# Empty dependencies file for ablation_timing.
# This may be replaced when dependencies are built.
