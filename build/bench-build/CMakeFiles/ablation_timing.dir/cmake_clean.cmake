file(REMOVE_RECURSE
  "../bench/ablation_timing"
  "../bench/ablation_timing.pdb"
  "CMakeFiles/ablation_timing.dir/ablation_timing.cc.o"
  "CMakeFiles/ablation_timing.dir/ablation_timing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
