# Empty dependencies file for ablation_oram_model.
# This may be replaced when dependencies are built.
