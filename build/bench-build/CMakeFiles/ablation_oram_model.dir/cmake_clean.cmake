file(REMOVE_RECURSE
  "../bench/ablation_oram_model"
  "../bench/ablation_oram_model.pdb"
  "CMakeFiles/ablation_oram_model.dir/ablation_oram_model.cc.o"
  "CMakeFiles/ablation_oram_model.dir/ablation_oram_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_oram_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
