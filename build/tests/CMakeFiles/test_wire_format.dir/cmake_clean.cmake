file(REMOVE_RECURSE
  "CMakeFiles/test_wire_format.dir/test_wire_format.cc.o"
  "CMakeFiles/test_wire_format.dir/test_wire_format.cc.o.d"
  "test_wire_format"
  "test_wire_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
