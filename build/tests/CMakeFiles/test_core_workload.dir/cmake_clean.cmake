file(REMOVE_RECURSE
  "CMakeFiles/test_core_workload.dir/test_core_workload.cc.o"
  "CMakeFiles/test_core_workload.dir/test_core_workload.cc.o.d"
  "test_core_workload"
  "test_core_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
