# Empty compiler generated dependencies file for test_obfusmem.
# This may be replaced when dependencies are built.
