file(REMOVE_RECURSE
  "CMakeFiles/test_obfusmem.dir/test_obfusmem.cc.o"
  "CMakeFiles/test_obfusmem.dir/test_obfusmem.cc.o.d"
  "test_obfusmem"
  "test_obfusmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obfusmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
