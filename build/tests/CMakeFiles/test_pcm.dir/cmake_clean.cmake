file(REMOVE_RECURSE
  "CMakeFiles/test_pcm.dir/test_pcm.cc.o"
  "CMakeFiles/test_pcm.dir/test_pcm.cc.o.d"
  "test_pcm"
  "test_pcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
