file(REMOVE_RECURSE
  "CMakeFiles/test_encryption_engine.dir/test_encryption_engine.cc.o"
  "CMakeFiles/test_encryption_engine.dir/test_encryption_engine.cc.o.d"
  "test_encryption_engine"
  "test_encryption_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encryption_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
