# Empty dependencies file for test_crypto_dh_rsa.
# This may be replaced when dependencies are built.
