file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_dh_rsa.dir/test_crypto_dh_rsa.cc.o"
  "CMakeFiles/test_crypto_dh_rsa.dir/test_crypto_dh_rsa.cc.o.d"
  "test_crypto_dh_rsa"
  "test_crypto_dh_rsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_dh_rsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
