file(REMOVE_RECURSE
  "CMakeFiles/test_trust.dir/test_trust.cc.o"
  "CMakeFiles/test_trust.dir/test_trust.cc.o.d"
  "test_trust"
  "test_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
