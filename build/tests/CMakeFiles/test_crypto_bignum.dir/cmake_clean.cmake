file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_bignum.dir/test_crypto_bignum.cc.o"
  "CMakeFiles/test_crypto_bignum.dir/test_crypto_bignum.cc.o.d"
  "test_crypto_bignum"
  "test_crypto_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
