
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/test_system.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/test_system.dir/test_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/om_system.dir/DependInfo.cmake"
  "/root/repo/build/src/secure/CMakeFiles/om_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/om_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/oram/CMakeFiles/om_oram.dir/DependInfo.cmake"
  "/root/repo/build/src/obfusmem/CMakeFiles/om_obfusmem.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/om_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/om_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/om_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/om_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/om_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
