/**
 * @file
 * Head-to-head: the same memory-intensive workload on Path ORAM
 * (both the paper's fixed-latency model and the detailed
 * device-level model) versus ObfusMem, reporting the paper's
 * headline metrics side by side.
 *
 * Usage: oram_vs_obfusmem [benchmark] [instructions-per-core]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "system/system.hh"

using namespace obfusmem;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "soplex";
    uint64_t instrs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60 * 1000;

    SystemConfig cfg;
    cfg.benchmark = bench;
    cfg.instrPerCore = instrs;

    std::cout << "Workload: " << bench << ", " << instrs
              << " instructions on each of " << cfg.cores
              << " cores, 8 GB PCM, 1 channel\n\n";

    cfg.mode = ProtectionMode::Unprotected;
    System base(cfg);
    auto base_result = base.run();

    cfg.mode = ProtectionMode::ObfusMemAuth;
    System obfus(cfg);
    auto obfus_result = obfus.run();

    cfg.mode = ProtectionMode::OramFixed;
    System oram(cfg);
    auto oram_result = oram.run();

    auto pct = [&](Tick t) {
        return 100.0
               * (static_cast<double>(t) / base_result.execTicks
                  - 1.0);
    };

    std::cout << std::fixed << std::setprecision(2);
    std::cout << std::left << std::setw(28) << "metric"
              << std::right << std::setw(14) << "unprotected"
              << std::setw(14) << "obfusmem" << std::setw(14)
              << "oram" << "\n";
    std::cout << std::string(70, '-') << "\n";
    std::cout << std::left << std::setw(28) << "execution time (ms)"
              << std::right << std::setw(14) << base_result.execMs()
              << std::setw(14) << obfus_result.execMs()
              << std::setw(14) << oram_result.execMs() << "\n";
    std::cout << std::left << std::setw(28) << "overhead (%)"
              << std::right << std::setw(14) << 0.0 << std::setw(14)
              << pct(obfus_result.execTicks) << std::setw(14)
              << pct(oram_result.execTicks) << "\n";
    std::cout << std::left << std::setw(28) << "IPC per core"
              << std::right << std::setw(14) << base_result.ipc
              << std::setw(14) << obfus_result.ipc << std::setw(14)
              << oram_result.ipc << "\n";
    std::cout << std::left << std::setw(28) << "PCM cell writes"
              << std::right << std::setw(14) << base_result.cellWrites
              << std::setw(14) << obfus_result.cellWrites
              << std::setw(14)
              << (std::to_string(oram.oramFixed()->blocksWritten())
                  + "*")
              << "\n";
    std::cout << "  (*) ORAM writes whole tree paths: "
              << oram.oramFixed()->blocksWritten() << " block writes "
              << "for " << oram.oramFixed()->accessCount()
              << " accesses.\n\n";

    double speedup = static_cast<double>(oram_result.execTicks)
                     / obfus_result.execTicks;
    std::cout << "ObfusMem speedup over ORAM: " << std::setprecision(1)
              << speedup << "x   (paper average: 9.1x, up to 17.1x)\n";

    // A small detailed Path ORAM against the real PCM substrate.
    cfg.mode = ProtectionMode::OramDetailed;
    cfg.instrPerCore = std::min<uint64_t>(instrs, 10000);
    cfg.oramDetailed.oram.levels = 12;
    cfg.oramDetailed.oram.stashLimit = 4000;
    System detailed(cfg);
    auto det = detailed.run();
    cfg.mode = ProtectionMode::Unprotected;
    System small_base(cfg);
    auto small = small_base.run();
    std::cout << "\nDetailed Path ORAM (L=12 tree, device-level "
                 "traffic): "
              << std::setprecision(0)
              << 100.0
                     * (static_cast<double>(det.execTicks)
                            / small.execTicks
                        - 1.0)
              << "% overhead,\n  "
              << detailed.oramDetailed()->blocksTransferred()
              << " bucket-block transfers, max stash "
              << detailed.oramDetailed()->oram().maxStashSize()
              << ", invariant "
              << (detailed.oramDetailed()->oram().checkInvariant()
                      ? "holds"
                      : "VIOLATED")
              << ".\n";
    return 0;
}
