/**
 * @file
 * obfussim - command-line driver for the ObfusMem simulator.
 *
 * Configure any protection mode, workload, channel count and knob of
 * the paper's design from the command line, run the simulation, and
 * get the result summary plus (optionally) the full gem5-style
 * statistics dump.
 *
 * Examples:
 *   obfussim --mode obfusmem+auth --benchmark mcf --instrs 500000
 *   obfussim --mode oram-fixed --benchmark soplex
 *   obfussim --mode obfusmem+auth --channels 8 --scheme unopt --stats
 *   obfussim --mode obfusmem+auth --dummy-policy original --observer
 *   obfussim --list-benchmarks
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "system/oblivious_backend.hh"
#include "system/system.hh"

using namespace obfusmem;

namespace {

void
usage()
{
    std::cout <<
        "usage: obfussim [options]\n"
        "  --mode M           unprotected | encryption-only | obfusmem |\n"
        "                     obfusmem+auth | oram-fixed | oram-detailed |\n"
        "                     flat-oram | wo-oram (any registry name)\n"
        "  --benchmark B      one of Table 1's SPEC names (default milc)\n"
        "  --trace FILE       replay a recorded memory trace instead\n"
        "  --instrs N         instructions per core (default 200000)\n"
        "  --cores N          number of cores (default 4)\n"
        "  --channels N       memory channels: 1/2/4/8 (default 1)\n"
        "  --seed N           simulation seed (default 42)\n"
        "  --scheme S         inter-channel dummies: none | unopt | opt\n"
        "  --dummy-policy P   fixed | original | random\n"
        "  --mac-mode M       and | then (encrypt-and/then-MAC)\n"
        "  --uniform-packets  InvisiMem-style fixed-size packets\n"
        "  --timing-oblivious constant-rate issue (Sec 6.2)\n"
        "  --epoch NS         issue epoch for timing mode (default 60)\n"
        "  --integrity        enable Merkle tree over counters\n"
        "  --boot             derive session keys via the DH boot protocol\n"
        "  --observer         print the attacker-observer analysis\n"
        "  --stats            dump full statistics\n"
        "  --list-benchmarks  print available workloads and exit\n";
}

[[noreturn]] void
die(const std::string &msg)
{
    std::cerr << "obfussim: " << msg << "\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig cfg;
    cfg.benchmark = "milc";
    cfg.instrPerCore = 200000;
    bool dump_stats = false;
    bool show_observer = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                die("missing value for " + arg);
            return argv[++i];
        };

        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list-benchmarks") {
            for (const auto &p : BenchmarkProfile::spec2006()) {
                std::cout << p.name << " (IPC " << p.paperIpc
                          << ", MPKI " << p.paperMpki << ")\n";
            }
            return 0;
        } else if (arg == "--mode") {
            std::string m = next();
            const ObliviousBackendInfo *info = backendInfoByName(m);
            if (!info) {
                std::string names;
                for (const auto &row : allBackendInfos())
                    names += std::string(" ") + row.name;
                die("unknown mode " + m + " (known:" + names + ")");
            }
            cfg.mode = info->mode;
        } else if (arg == "--benchmark") {
            cfg.benchmark = next();
        } else if (arg == "--trace") {
            cfg.traceFile = next();
        } else if (arg == "--instrs") {
            cfg.instrPerCore = std::strtoull(next().c_str(), nullptr,
                                             10);
        } else if (arg == "--cores") {
            cfg.cores = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
            cfg.hierarchy.cores = cfg.cores;
        } else if (arg == "--channels") {
            cfg.channels = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--scheme") {
            std::string s = next();
            if (s == "none")
                cfg.obfusmem.channelScheme = ChannelScheme::None;
            else if (s == "unopt")
                cfg.obfusmem.channelScheme = ChannelScheme::Unopt;
            else if (s == "opt")
                cfg.obfusmem.channelScheme = ChannelScheme::Opt;
            else
                die("unknown scheme " + s);
        } else if (arg == "--dummy-policy") {
            std::string p = next();
            if (p == "fixed")
                cfg.obfusmem.dummyPolicy = DummyPolicy::Fixed;
            else if (p == "original")
                cfg.obfusmem.dummyPolicy = DummyPolicy::Original;
            else if (p == "random")
                cfg.obfusmem.dummyPolicy = DummyPolicy::Random;
            else
                die("unknown dummy policy " + p);
        } else if (arg == "--mac-mode") {
            std::string m = next();
            if (m == "and")
                cfg.obfusmem.mac.mode = MacMode::EncryptAndMac;
            else if (m == "then")
                cfg.obfusmem.mac.mode = MacMode::EncryptThenMac;
            else
                die("unknown MAC mode " + m);
        } else if (arg == "--uniform-packets") {
            cfg.obfusmem.uniformPackets = true;
        } else if (arg == "--timing-oblivious") {
            cfg.obfusmem.timingOblivious = true;
        } else if (arg == "--epoch") {
            cfg.obfusmem.issueEpoch =
                std::strtoull(next().c_str(), nullptr, 10) * tickPerNs;
        } else if (arg == "--integrity") {
            cfg.encryption.integrity = true;
        } else if (arg == "--boot") {
            cfg.runBootProtocol = true;
        } else if (arg == "--observer") {
            show_observer = true;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else {
            usage();
            die("unknown option " + arg);
        }
    }

    if (cfg.mode == ProtectionMode::OramDetailed) {
        cfg.oramDetailed.oram.levels = 12;
        cfg.oramDetailed.oram.stashLimit = 4000;
    }

    std::cout << "obfussim: mode=" << protectionModeName(cfg.mode)
              << " benchmark=" << cfg.benchmark
              << " cores=" << cfg.cores << " channels=" << cfg.channels
              << " instrs/core=" << cfg.instrPerCore << "\n";

    System system(cfg);
    System::RunResult r = system.run();

    std::cout << "\nresults:\n";
    std::cout << "  execution time : " << r.execMs() << " ms ("
              << r.execTicks << " ticks)\n";
    std::cout << "  IPC per core   : " << r.ipc << "\n";
    std::cout << "  LLC MPKI       : " << r.mpki << "\n";
    std::cout << "  avg gap        : " << r.avgGapNs << " ns\n";
    std::cout << "  bus utilization: " << r.busUtilization * 100
              << " %\n";
    std::cout << "  PCM cell writes: " << r.cellWrites << "\n";
    std::cout << "  PCM energy     : " << r.pcmEnergyPj << " pJ\n";

    if (show_observer && system.observer()) {
        const BusObserver &obs = *system.observer();
        std::cout << "\nattacker observer:\n";
        std::cout << "  request messages  : " << obs.requestMessages()
                  << "\n";
        std::cout << "  addr reuse        : "
                  << obs.addrReuseFraction() << "\n";
        std::cout << "  type imbalance    : " << obs.typeImbalance()
                  << "\n";
        std::cout << "  solo-channel frac : "
                  << obs.soloBucketFraction() << "\n";
    }

    if (dump_stats) {
        std::cout << "\n";
        system.dumpStats(std::cout);
    }
    return 0;
}
