/**
 * @file
 * Walks through the ObfusMem trust architecture (paper Sec. 3.1):
 * manufacturing components with burned-in keys, the three
 * bootstrapping approaches, a man-in-the-middle attack during boot,
 * session-key establishment, and a component upgrade.
 */

#include <iostream>

#include "crypto/bytes.hh"
#include "trust/boot.hh"
#include "util/random.hh"

using namespace obfusmem;
using namespace obfusmem::trust;

namespace {

void
report(const std::string &what, const BootResult &result)
{
    std::cout << "  " << what << ": "
              << (result.success ? "ESTABLISHED" : "REJECTED");
    if (!result.success)
        std::cout << " (" << result.failureReason << ")";
    if (result.attackerHoldsKeys)
        std::cout << "  ** ATTACKER HOLDS SESSION KEYS **";
    std::cout << "\n";
    if (result.success && !result.channelKeys.empty()) {
        std::cout << "    channel 0 session key: "
                  << crypto::toHex(result.channelKeys[0]) << "\n";
    }
}

} // namespace

int
main()
{
    Random rng(2024);

    std::cout << "=== Manufacturing ===\n";
    Manufacturer proc_maker("ProcCorp", 256, rng);
    Manufacturer mem_maker("MemCorp", 256, rng);
    Component proc("cpu0", proc_maker, 256, true, rng);
    Component mem("hbm0", mem_maker, 256, true, rng);
    std::cout << "  cpu0 device key burned by ProcCorp; certificate "
              << (proc.certificate().verify(proc_maker.caPublicKey())
                      ? "verifies"
                      : "BROKEN")
              << "\n";
    std::cout << "  hbm0 device key burned by MemCorp;  certificate "
              << (mem.certificate().verify(mem_maker.caPublicKey())
                      ? "verifies"
                      : "BROKEN")
              << "\n\n";

    std::cout << "=== Approach 1: naive key exchange in the clear "
                 "===\n";
    report("honest boot",
           BootProtocol::run(BootApproach::Naive, proc, mem, 2, rng));
    MitmAttacker mitm(rng);
    report("boot with bus MITM",
           BootProtocol::run(BootApproach::Naive, proc, mem, 2, rng,
                             &mitm));
    std::cout << "  -> the paper rejects this approach: the attack "
                 "succeeds silently.\n\n";

    std::cout << "=== Approach 2: trusted system integrator ===\n";
    report("boot before key provisioning",
           BootProtocol::run(BootApproach::TrustedIntegrator, proc,
                             mem, 2, rng));
    proc.peerKeys().burn(mem.publicKey());
    mem.peerKeys().burn(proc.publicKey());
    report("boot after provisioning",
           BootProtocol::run(BootApproach::TrustedIntegrator, proc,
                             mem, 2, rng));
    report("boot with bus MITM",
           BootProtocol::run(BootApproach::TrustedIntegrator, proc,
                             mem, 2, rng, &mitm));
    std::cout << "\n";

    std::cout << "=== Approach 3: untrusted integrator + attestation "
                 "===\n";
    report("boot with attestation",
           BootProtocol::run(BootApproach::UntrustedIntegrator, proc,
                             mem, 2, rng));
    // A malicious integrator burns an impostor's key.
    Component impostor("evil-hbm", mem_maker, 256, true, rng);
    Component victim("cpu1", proc_maker, 256, true, rng);
    victim.peerKeys().burn(impostor.publicKey());
    mem.peerKeys().burn(victim.publicKey());
    report("boot with maliciously burned key",
           BootProtocol::run(BootApproach::UntrustedIntegrator,
                             victim, mem, 2, rng));
    std::cout << "\n";

    std::cout << "=== Reboot -> fresh session keys ===\n";
    BootResult first = BootProtocol::run(
        BootApproach::TrustedIntegrator, proc, mem, 1, rng);
    BootResult second = BootProtocol::run(
        BootApproach::TrustedIntegrator, proc, mem, 1, rng);
    std::cout << "  keys differ across reboots: "
              << (first.channelKeys[0] != second.channelKeys[0]
                      ? "yes"
                      : "NO (bug!)")
              << "\n\n";

    std::cout << "=== Component upgrade via spare registers ===\n";
    Component new_mem("hbm1", mem_maker, 256, true, rng);
    bool burned = BootProtocol::upgradeComponent(proc, new_mem);
    new_mem.peerKeys().burn(proc.publicKey());
    std::cout << "  spare slot burned: " << (burned ? "yes" : "no")
              << ", slots free on cpu0: "
              << proc.peerKeys().slotsFree() << "\n";
    report("boot with upgraded memory",
           BootProtocol::run(BootApproach::TrustedIntegrator, proc,
                             new_mem, 2, rng));
    return 0;
}
