/**
 * @file
 * The attacker's perspective: run the same workload on an
 * unprotected, an encryption-only, and an ObfusMem-protected system,
 * and print what a passive probe on the memory-channel wires can
 * extract in each case (paper Secs. 2.3 and 6.1).
 */

#include <iomanip>
#include <iostream>

#include "system/system.hh"

using namespace obfusmem;

namespace {

void
snoop(ProtectionMode mode)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.benchmark = "milc";
    cfg.instrPerCore = 60 * 1000;
    cfg.channels = 4;
    System sys(cfg);
    sys.run();

    // A victim routine with temporal reuse: fetch-then-writeback of
    // the same blocks puts each address on the wire twice (unless
    // the wire is obfuscated).
    for (int i = 0; i < 32; ++i) {
        DataBlock secret;
        secret.fill(static_cast<uint8_t>(i));
        sys.timedStore(0, 0x30000000 + i * 64ull, secret, [](Tick) {});
    }
    sys.eventQueue().run();
    sys.flushAndDrain();

    const BusObserver &obs = *sys.observer();
    std::cout << "--- " << protectionModeName(mode) << " ---\n";
    std::cout << std::fixed << std::setprecision(3);
    std::cout << "  request messages seen      : "
              << obs.requestMessages() << "\n";
    std::cout << "  distinct wire addresses    : "
              << obs.distinctWireAddrs() << "\n";
    std::cout << "  address reuse fraction     : "
              << obs.addrReuseFraction()
              << (obs.addrReuseFraction() > 0.01
                      ? "   <- temporal pattern leaks"
                      : "   (no temporal signal)")
              << "\n";
    std::cout << "  hottest address seen       : "
              << obs.hottestAddrCount() << "x"
              << (obs.hottestAddrCount() > 2
                      ? "   <- dictionary-attack handle"
                      : "")
              << "\n";
    std::cout << "  read/write imbalance       : "
              << obs.typeImbalance()
              << (obs.typeImbalance() < 0.01
                      ? "   (perfect read-then-write pairs)"
                      : "   <- request types leak")
              << "\n";
    std::cout << "  solo-channel time buckets  : "
              << obs.soloBucketFraction()
              << (obs.soloBucketFraction() > 0.03
                      ? "   <- inter-channel pattern leaks"
                      : "   (channels indistinguishable)")
              << "\n";
    std::cout << "  bytes to memory / to proc  : "
              << obs.bytesToMemory() << " / " << obs.bytesToProcessor()
              << "\n\n";
}

} // namespace

int
main()
{
    std::cout << "A passive attacker probes all four memory channels "
                 "while milc runs.\n\n";
    snoop(ProtectionMode::Unprotected);
    snoop(ProtectionMode::EncryptionOnly);
    snoop(ProtectionMode::ObfusMemAuth);

    std::cout << "Summary: encryption alone hides data but not the "
                 "access pattern; ObfusMem\nmakes addresses, types, "
                 "reuse and channel activity statistically "
                 "featureless.\n";
    return 0;
}
