/**
 * @file
 * NVM endurance demo: PCM cells tolerate a limited number of writes
 * (paper Sec. 2.3). This example runs a write-heavy workload under
 * ObfusMem and under each dummy-address policy, then projects the
 * memory lifetime from the measured cell-write rates - showing why
 * the paper's fixed-address dummy design matters for NVM, and what
 * ORAM's ~100x write amplification would do.
 */

#include <iomanip>
#include <iostream>

#include "system/system.hh"

using namespace obfusmem;

namespace {

struct Sample
{
    std::string name;
    uint64_t cellWrites;
    uint64_t hotRowWrites;
    double seconds;
};

Sample
measure(const std::string &name, ProtectionMode mode,
        DummyPolicy policy)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.benchmark = "lbm"; // write-heavy streaming
    cfg.instrPerCore = 60 * 1000;
    cfg.obfusmem.dummyPolicy = policy;
    System sys(cfg);
    auto r = sys.run();

    uint64_t hottest = 0;
    for (auto &pcm : sys.pcmControllers())
        hottest = std::max(hottest, pcm->maxRowCellWrites());
    return {name, r.cellWrites, hottest,
            static_cast<double>(r.execTicks) / tickPerSec};
}

} // namespace

int
main()
{
    std::cout << "Write-heavy workload (lbm) on 8 GB PCM; cell "
                 "endurance "
              << std::scientific << std::setprecision(0)
              << PcmParams{}.cellEndurance << " writes.\n\n";

    Sample samples[] = {
        measure("unprotected", ProtectionMode::Unprotected,
                DummyPolicy::Fixed),
        measure("obfusmem (fixed dummy)", ProtectionMode::ObfusMemAuth,
                DummyPolicy::Fixed),
        measure("obfusmem (original-addr)",
                ProtectionMode::ObfusMemAuth, DummyPolicy::Original),
        measure("obfusmem (random-addr)", ProtectionMode::ObfusMemAuth,
                DummyPolicy::Random),
    };

    const double endurance = PcmParams{}.cellEndurance;
    double base_rate = samples[0].cellWrites / samples[0].seconds;

    std::cout << std::left << std::setw(26) << "configuration"
              << std::right << std::setw(12) << "cellWrites"
              << std::setw(12) << "hottestRow" << std::setw(14)
              << "writes/sec" << std::setw(16) << "rel. lifetime"
              << "\n"
              << std::string(80, '-') << "\n";

    for (const Sample &s : samples) {
        double rate = s.cellWrites / s.seconds;
        std::cout << std::left << std::setw(26) << s.name
                  << std::right << std::fixed << std::setprecision(0)
                  << std::setw(12) << s.cellWrites << std::setw(12)
                  << s.hotRowWrites << std::setw(14) << rate
                  << std::setw(15) << std::setprecision(2)
                  << (base_rate / rate) << "x\n";
    }

    // ORAM projection: every access rewrites a full tree path.
    SystemConfig cfg;
    cfg.mode = ProtectionMode::OramFixed;
    cfg.benchmark = "lbm";
    cfg.instrPerCore = 60 * 1000;
    System oram(cfg);
    auto r = oram.run();
    double oram_rate = oram.oramFixed()->blocksWritten()
                       / (static_cast<double>(r.execTicks)
                          / tickPerSec);
    std::cout << std::left << std::setw(26) << "path-oram (projected)"
              << std::right << std::setw(12)
              << oram.oramFixed()->blocksWritten() << std::setw(12)
              << "-" << std::fixed << std::setprecision(0)
              << std::setw(14) << oram_rate << std::setw(15)
              << std::setprecision(4) << (base_rate / oram_rate)
              << "x\n\n";

    std::cout << std::setprecision(1)
              << "With perfect wear leveling, unprotected lifetime "
                 "at this rate would be\napproximately "
              << endurance * (8ull << 30) / blockBytes / base_rate
                     / (3600 * 24 * 365)
              << " years; ObfusMem leaves that unchanged, while "
                 "ORAM's path\nevictions divide it by ~"
              << std::setprecision(0) << oram_rate / base_rate
              << ".\n";
    return 0;
}
