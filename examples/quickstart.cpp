/**
 * @file
 * Quickstart: build an ObfusMem-protected system, run a memory-heavy
 * workload on it, verify data integrity end to end, and print the
 * headline numbers next to an unprotected baseline.
 *
 * Usage: quickstart [benchmark] [instructions-per-core]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "system/system.hh"

using namespace obfusmem;

namespace {

System::RunResult
runMode(ProtectionMode mode, const std::string &bench, uint64_t instrs)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.benchmark = bench;
    cfg.instrPerCore = instrs;
    System system(cfg);
    return system.run();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "milc";
    uint64_t instrs = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                               : 200 * 1000;

    std::cout << "=== ObfusMem quickstart: " << bench << ", " << instrs
              << " instructions/core, 4 cores ===\n\n";

    // 1. Functional sanity: write through the full encrypted and
    // obfuscated path, flush, and read back.
    {
        SystemConfig cfg;
        cfg.mode = ProtectionMode::ObfusMemAuth;
        cfg.benchmark = bench;
        cfg.runBootProtocol = true; // real DH session establishment
        System system(cfg);

        DataBlock pattern;
        for (size_t i = 0; i < pattern.size(); ++i)
            pattern[i] = static_cast<uint8_t>(i * 7 + 1);

        bool stored = false;
        system.timedStore(0, 0x1000, pattern,
                          [&stored](Tick) { stored = true; });
        system.eventQueue().run();
        system.flushAndDrain();

        DataBlock back = system.functionalRead(0x1000);
        std::cout << "write->flush->read through AES-CTR bus "
                  << "encryption: "
                  << (back == pattern && stored ? "OK" : "MISMATCH")
                  << "\n";

        DataBlock raw = system.backingStore().read(0x1000);
        std::cout << "ciphertext at rest differs from plaintext: "
                  << (raw != pattern ? "OK" : "LEAK") << "\n\n";
    }

    // 2. Performance: unprotected vs full ObfusMem+Auth vs ORAM.
    std::cout << std::left << std::setw(18) << "config"
              << std::right << std::setw(12) << "time(ms)"
              << std::setw(8) << "IPC" << std::setw(10) << "MPKI"
              << std::setw(12) << "overhead\n";

    System::RunResult base =
        runMode(ProtectionMode::Unprotected, bench, instrs);
    auto row = [&base](const char *name,
                       const System::RunResult &r) {
        double overhead =
            100.0 * (static_cast<double>(r.execTicks)
                     / base.execTicks - 1.0);
        std::cout << std::left << std::setw(18) << name << std::right
                  << std::setw(12) << std::fixed
                  << std::setprecision(3) << r.execMs() << std::setw(8)
                  << std::setprecision(2) << r.ipc << std::setw(10)
                  << r.mpki << std::setw(10) << std::setprecision(1)
                  << overhead << "%\n";
    };

    row("unprotected", base);
    row("encryption-only",
        runMode(ProtectionMode::EncryptionOnly, bench, instrs));
    row("obfusmem", runMode(ProtectionMode::ObfusMem, bench, instrs));
    row("obfusmem+auth",
        runMode(ProtectionMode::ObfusMemAuth, bench, instrs));
    row("oram (2500ns)",
        runMode(ProtectionMode::OramFixed, bench, instrs));

    return 0;
}
