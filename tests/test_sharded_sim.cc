/**
 * @file
 * Sharded simulation kernel tests: the hard requirement is that
 * simulated results are bit-identical at OBFUSMEM_SIM_SHARDS=1 and N
 * — the synthetic-workload tests compare full execution logs across
 * shard counts, the topology tests compare wire traces and stats
 * dumps of a small multi-tenant rack. Ordering tests run against both
 * event-queue backends, including events that land exactly at and one
 * tick past the lookahead horizon (where the timing wheel's overflow
 * heap takes over, since the horizon sits beyond the wheel span).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/sharded_kernel.hh"
#include "system/topology.hh"

using namespace obfusmem;

namespace {

std::string
implName(const ::testing::TestParamInfo<EvqImpl> &info)
{
    return info.param == EvqImpl::Wheel ? "wheel" : "heap";
}

/**
 * Synthetic cross-endpoint workload: chains of events hopping around
 * the endpoint ring through kernel.post(). Each endpoint logs every
 * hop it executes; logs are per-endpoint (only ever touched by the
 * owning shard) and concatenated in endpoint order afterwards, so two
 * runs are comparable regardless of the shard layout.
 */
struct RingWorkload
{
    ShardedKernel kernel;
    std::vector<std::unique_ptr<EventQueue>> queues;
    std::vector<std::vector<std::pair<Tick, uint64_t>>> logs;
    unsigned endpoints;
    Tick lookahead;
    int maxHops;

    RingWorkload(unsigned shards, unsigned endpoints_, Tick lookahead_,
                 int max_hops, EvqImpl impl)
        : kernel({shards, lookahead_}), logs(endpoints_),
          endpoints(endpoints_), lookahead(lookahead_),
          maxHops(max_hops)
    {
        for (unsigned e = 0; e < endpoints; ++e) {
            queues.push_back(std::make_unique<EventQueue>(impl));
            kernel.addEndpoint(*queues.back());
        }
    }

    void hop(unsigned e, int h, uint64_t chain)
    {
        const Tick now = queues[e]->curTick();
        logs[e].push_back({now, chain * 1000 + h});
        if (h >= maxHops)
            return;
        const unsigned dst = (e + 1) % endpoints;
        // Deterministic jitter so hops land at varied offsets inside
        // their epoch, not just on the boundary.
        const Tick when = now + lookahead + (chain * 7 + h) % 11;
        kernel.post(e, dst, when, [this, dst, h, chain]() {
            hop(dst, h + 1, chain);
        });
    }

    ShardedKernel::RunSummary run()
    {
        for (unsigned e = 0; e < endpoints; ++e) {
            queues[e]->schedule(1 + e, [this, e]() {
                hop(e, 0, e);
            });
        }
        return kernel.run();
    }
};

class ShardedKernelImplTest : public ::testing::TestWithParam<EvqImpl>
{
};

} // namespace

INSTANTIATE_TEST_SUITE_P(Impls, ShardedKernelImplTest,
                         ::testing::Values(EvqImpl::Wheel,
                                           EvqImpl::Heap),
                         implName);

TEST_P(ShardedKernelImplTest, ShardCountNeverChangesResults)
{
    const Tick lookahead = 5000;
    std::vector<std::vector<std::pair<Tick, uint64_t>>> ref_logs;
    ShardedKernel::RunSummary ref{};
    for (unsigned shards : {1u, 2u, 3u, 6u}) {
        RingWorkload w(shards, 6, lookahead, 25, GetParam());
        ShardedKernel::RunSummary sum = w.run();
        if (shards == 1) {
            ref_logs = w.logs;
            ref = sum;
            continue;
        }
        EXPECT_EQ(w.logs, ref_logs) << "shards=" << shards;
        EXPECT_EQ(sum.epochs, ref.epochs);
        EXPECT_EQ(sum.eventsExecuted, ref.eventsExecuted);
        EXPECT_EQ(sum.crossMessages, ref.crossMessages);
        EXPECT_EQ(sum.endTick, ref.endTick);
    }
}

TEST(ShardedKernelTest, ShardsClampToEndpointCount)
{
    RingWorkload w(16, 3, 1000, 2, EvqImpl::Wheel);
    w.run();
    EXPECT_EQ(w.kernel.shards(), 3u);
    EXPECT_EQ(w.kernel.endpoints(), 3u);
}

TEST(ShardedKernelTest, SummaryCountsAreConsistent)
{
    RingWorkload w(2, 4, 2000, 10, EvqImpl::Wheel);
    ShardedKernel::RunSummary sum = w.run();
    // 4 chains x (1 seed event + 10 posted hops).
    EXPECT_EQ(sum.eventsExecuted, 4u * 11u);
    EXPECT_EQ(sum.crossMessages, 4u * 10u);
    EXPECT_GT(sum.epochs, 0u);
    EXPECT_EQ(sum.endTick, sum.epochs * 2000);
    uint64_t logged = 0;
    for (auto &l : w.logs)
        logged += l.size();
    EXPECT_EQ(logged, sum.eventsExecuted);
}

TEST(ShardedKernelDeathTest, PostBelowHorizonPanics)
{
    ASSERT_DEATH(
        {
            // Single shard: the violation must trip even on the
            // inline path (and the death test stays single-threaded).
            RingWorkload w(1, 2, 1000, 1, EvqImpl::Wheel);
            w.queues[0]->schedule(5, [&]() {
                // Legal posts need when >= the end of the current
                // epoch; tick 500 is inside it.
                w.kernel.post(0, 1, 500, []() {});
            });
            w.kernel.run();
        },
        "lookahead horizon");
}

TEST(ShardedKernelDeathTest, ZeroLookaheadPanics)
{
    ASSERT_DEATH(ShardedKernel({1, 0}), "lookahead");
}

/**
 * The lookahead horizon of the datacenter topology (link latency,
 * hundreds of microseconds) sits far past the timing wheel's span, so
 * every cross-shard event enters the destination wheel's overflow
 * heap and must promote back into the wheel as epochs advance. Pin
 * the interaction down at the exact boundary: events at precisely the
 * horizon tick and one tick past it, on both backends, with the wheel
 * backend required to report overflow promotions.
 */
TEST_P(ShardedKernelImplTest, OverflowPromotionAcrossEpochBarriers)
{
    // Wheel span is 1 << 16 ticks; make the epoch clear it.
    const Tick lookahead = (1ull << 16) + 4096;
    RingWorkload w(2, 2, lookahead, 0, GetParam());

    std::vector<std::pair<Tick, int>> fired;
    w.queues[0]->schedule(1, [&]() {
        const Tick horizon = lookahead; // end of epoch 0
        // Exactly at the horizon: the earliest legal landing tick.
        w.kernel.post(0, 1, horizon, [&, horizon]() {
            fired.push_back({w.queues[1]->curTick(), 0});
            EXPECT_EQ(w.queues[1]->curTick(), horizon);
        });
        // One tick past the horizon.
        w.kernel.post(0, 1, horizon + 1, [&, horizon]() {
            fired.push_back({w.queues[1]->curTick(), 1});
        });
        // Deep into a later epoch: far beyond the wheel span even
        // relative to the drain tick.
        w.kernel.post(0, 1, horizon * 3 + 7, [&]() {
            fired.push_back({w.queues[1]->curTick(), 2});
        });
    });
    ShardedKernel::RunSummary sum = w.kernel.run();

    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], (std::pair<Tick, int>{lookahead, 0}));
    EXPECT_EQ(fired[1], (std::pair<Tick, int>{lookahead + 1, 1}));
    EXPECT_EQ(fired[2], (std::pair<Tick, int>{lookahead * 3 + 7, 2}));
    EXPECT_EQ(sum.crossMessages, 3u);
    if (GetParam() == EvqImpl::Wheel) {
        // At drain time the deep event is still far beyond the wheel
        // span; it must take the overflow-heap path and promote back
        // into the wheel as the epochs advance.
        EXPECT_GT(w.queues[1]->overflowPromotions(), 0u);
    }
}

// --- Multi-tenant topology ------------------------------------------

namespace {

struct RackRun
{
    std::string traces;
    std::string stats;
    MultiTenantTopology::Result result;
};

RackRun
runSmallRack(unsigned shards)
{
    TopologyConfig tc;
    tc.sockets = 4;
    tc.channelsPerSocket = 2;
    tc.tenantsPerSocket = 2;
    tc.mode = ProtectionMode::ObfusMemAuth;
    tc.channelScheme = ChannelScheme::Opt;
    tc.shards = shards;
    tc.recordTraces = true;
    tc.capacityBytes = 1ull << 30;

    TenantParams tp;
    tp.requests = 120;
    tp.outstanding = 3;
    tp.remoteFraction = 0.2;

    MultiTenantTopology rack(tc, tp);
    RackRun run;
    run.result = rack.run();
    std::ostringstream traces, stats;
    rack.dumpWireTraces(traces);
    rack.dumpStats(stats);
    run.traces = traces.str();
    run.stats = stats.str();
    return run;
}

} // namespace

TEST(MultiTenantTopologyTest, BitIdenticalAcrossShardCounts)
{
    RackRun s1 = runSmallRack(1);
    ASSERT_GT(s1.result.requestsCompleted, 0u);
    EXPECT_EQ(s1.result.requestsCompleted, 4u * 2u * 120u);
    EXPECT_GT(s1.result.remoteRequests, 0u);
    EXPECT_GT(s1.result.crossMessages, 0u);
    EXPECT_FALSE(s1.traces.empty());

    for (unsigned shards : {2u, 4u}) {
        RackRun sn = runSmallRack(shards);
        EXPECT_EQ(sn.traces, s1.traces) << "shards=" << shards;
        EXPECT_EQ(sn.stats, s1.stats) << "shards=" << shards;
        EXPECT_EQ(sn.result.lastCompletionTick,
                  s1.result.lastCompletionTick);
        EXPECT_EQ(sn.result.crossMessages, s1.result.crossMessages);
        EXPECT_EQ(sn.result.eventsExecuted, s1.result.eventsExecuted);
        EXPECT_EQ(sn.result.epochs, s1.result.epochs);
        EXPECT_EQ(sn.result.avgLatencyNs, s1.result.avgLatencyNs);
    }
}

TEST(MultiTenantTopologyTest, RemoteTrafficCrossesTheKernel)
{
    RackRun run = runSmallRack(2);
    // Every remote request takes two link hops (request + reply).
    EXPECT_GE(run.result.crossMessages,
              2 * run.result.remoteRequests);
    EXPECT_GT(run.result.epochs, 0u);
    EXPECT_GT(run.result.avgLatencyNs, 0.0);
}
