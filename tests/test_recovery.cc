/**
 * @file
 * Channel fault-tolerance tests: the seeded fault injector, the
 * bounded-retry/resync/re-key recovery ladder on the ObfusMem
 * channel, quarantine escalation, and the wire-invisibility of the
 * recovery layer on a faultless run. Registered twice in CTest, once
 * per OBFUSMEM_EVQ_IMPL backend.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "mem/fault_injector.hh"
#include "system/system.hh"
#include "util/env.hh"

using namespace obfusmem;

namespace {

SystemConfig
recoveryConfig()
{
    SystemConfig cfg;
    cfg.mode = ProtectionMode::ObfusMemAuth;
    cfg.benchmark = "milc";
    cfg.instrPerCore = 20000;
    cfg.cores = 2;
    cfg.channels = 1;
    return cfg;
}

/** Re-route channel 0's request path through a manipulator. */
template <typename F>
void
interceptRequests(System &sys, F manipulate)
{
    ObfusMemMemSide *side = sys.memSides()[0].get();
    sys.procSide()->setRequestTarget(0,
        [side, manipulate](WireMessage &&msg) mutable {
            if (manipulate(msg))
                side->receiveMessage(std::move(msg));
        });
}

/** Re-route channel 0's reply path through a manipulator. */
template <typename F>
void
interceptReplies(System &sys, F manipulate)
{
    ObfusMemProcSide *proc = sys.procSide();
    sys.memSides()[0]->setReplyTarget(
        [proc, manipulate](WireMessage &&msg) mutable {
            if (manipulate(msg))
                proc->receiveReply(0, std::move(msg));
        });
}

} // namespace

// --- Fault injector -------------------------------------------------

TEST(FaultInjector, UnconfiguredInjectorIsInert)
{
    FaultInjector::Params p;
    EXPECT_FALSE(p.any());
    FaultInjector inj(p);
    for (int i = 0; i < 1000; ++i) {
        FaultDecision d = inj.decide(0, BusDir::ToMemory);
        EXPECT_FALSE(d.drop || d.corrupt || d.duplicate);
        EXPECT_EQ(d.extraDelay, 0u);
    }
}

TEST(FaultInjector, SameSeedSameFaultPattern)
{
    FaultInjector::Params p;
    p.seed = 1234;
    p.dropProb = 0.05;
    p.corruptProb = 0.05;
    p.delayProb = 0.05;
    p.dupProb = 0.05;
    FaultInjector a(p), b(p);
    for (int i = 0; i < 2000; ++i) {
        FaultDecision da = a.decide(i % 4, BusDir::ToMemory);
        FaultDecision db = b.decide(i % 4, BusDir::ToMemory);
        EXPECT_EQ(da.drop, db.drop);
        EXPECT_EQ(da.corrupt, db.corrupt);
        EXPECT_EQ(da.duplicate, db.duplicate);
        EXPECT_EQ(da.extraDelay, db.extraDelay);
        EXPECT_EQ(da.entropy, db.entropy);
    }
}

TEST(FaultInjector, ConfiguredRatesRoughlyHold)
{
    FaultInjector::Params p;
    p.seed = 99;
    p.dropProb = 0.1;
    FaultInjector inj(p);
    int drops = 0;
    for (int i = 0; i < 10000; ++i)
        drops += inj.decide(0, BusDir::ToProcessor).drop ? 1 : 0;
    EXPECT_GT(drops, 700);
    EXPECT_LT(drops, 1300);
}

// --- Recovery ladder, deterministic single-fault scenarios ----------

TEST(Recovery, WholeGroupLossRecoveredByRetry)
{
    System sys(recoveryConfig());
    // Swallow the first complete request group (both frames of the
    // split scheme); the watchdog must rebuild it at fresh counters.
    unsigned frames = 0;
    interceptRequests(sys, [&frames](WireMessage &) {
        return ++frames > 2;
    });

    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();

    EXPECT_TRUE(completed);
    EXPECT_GE(sys.procSide()->retransmitCount(), 1u);
    EXPECT_EQ(sys.procSide()->quarantineCount(), 0u);
    EXPECT_FALSE(sys.procSide()->channelQuarantined(0));
}

TEST(Recovery, SingleFrameLossResyncsMemorySide)
{
    System sys(recoveryConfig());
    // Drop only the first frame (the read half): the memory side sees
    // the paired write at an unexpected counter and must scan forward
    // to it instead of wedging.
    unsigned frames = 0;
    interceptRequests(sys, [&frames](WireMessage &) {
        return ++frames != 1;
    });

    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();

    EXPECT_TRUE(completed);
    EXPECT_GE(sys.memSides()[0]->resyncCount(), 1u);
    EXPECT_EQ(sys.procSide()->quarantineCount(), 0u);
}

TEST(Recovery, ReplyLossRecoveredByRetryAndResync)
{
    System sys(recoveryConfig());
    // Swallow the first reply: the processor retries the read, the
    // memory side re-serves it at later response counters, and the
    // processor's reply stream must resync forward onto them.
    unsigned replies = 0;
    interceptReplies(sys, [&replies](WireMessage &) {
        return ++replies != 1;
    });

    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();

    EXPECT_TRUE(completed);
    EXPECT_GE(sys.procSide()->retransmitCount(), 1u);
    EXPECT_GE(sys.procSide()->resyncCount(), 1u);
    EXPECT_EQ(sys.procSide()->quarantineCount(), 0u);
}

TEST(Recovery, CorruptedFrameRecoveredByRetry)
{
    System sys(recoveryConfig());
    // Flip one ciphertext header bit on the first frame only.
    unsigned frames = 0;
    interceptRequests(sys, [&frames](WireMessage &msg) {
        if (++frames == 1)
            msg.cipherHeader[3] ^= 0x40;
        return true;
    });

    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();

    EXPECT_TRUE(completed);
    // The frame is rejected (MAC mismatch or unattributable) and the
    // group is retried; either way the request is eventually served.
    EXPECT_GE(sys.memSides()[0]->tamperDetections()
                  + sys.memSides()[0]->discardedFrames(),
              1u);
    EXPECT_GE(sys.procSide()->retransmitCount(), 1u);
    EXPECT_EQ(sys.procSide()->quarantineCount(), 0u);
}

TEST(Recovery, DuplicatedFramesAreDiscardedHarmlessly)
{
    System sys(recoveryConfig());
    // Deliver every request frame twice. Duplicates decrypt garbage
    // at already-consumed counters and the forward-only scan must not
    // move the cursor for them.
    ObfusMemMemSide *side = sys.memSides()[0].get();
    sys.procSide()->setRequestTarget(0, [side](WireMessage &&msg) {
        WireMessage copy = msg;
        side->receiveMessage(std::move(msg));
        side->receiveMessage(std::move(copy));
    });

    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();

    EXPECT_TRUE(completed);
    EXPECT_GE(sys.memSides()[0]->discardedFrames(), 1u);
    EXPECT_EQ(sys.memSides()[0]->resyncCount(), 0u);
    EXPECT_EQ(sys.procSide()->quarantineCount(), 0u);
}

// --- Re-key and quarantine escalation -------------------------------

TEST(Recovery, PersistentTamperTriggersSuccessfulRekey)
{
    System sys(recoveryConfig());
    // Corrupt every data-plane request frame until the processor
    // gives up on retries and opens a re-key handshake; from then on
    // let traffic through so the handshake (on the always-valid
    // control streams) can complete and the pending reads replay.
    ObfusMemProcSide *proc = sys.procSide();
    interceptRequests(sys, [proc](WireMessage &msg) {
        if (proc->rekeysStartedCount() == 0)
            msg.cipherHeader[0] ^= 0x01;
        return true;
    });

    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();

    EXPECT_TRUE(completed);
    EXPECT_EQ(sys.procSide()->rekeysStartedCount(), 1u);
    EXPECT_EQ(sys.procSide()->rekeysCompletedCount(), 1u);
    EXPECT_EQ(sys.memSides()[0]->rekeysInstalled(), 1u);
    EXPECT_EQ(sys.procSide()->quarantineCount(), 0u);
    EXPECT_FALSE(sys.procSide()->channelQuarantined(0));
}

TEST(Recovery, UnrecoverableChannelIsQuarantined)
{
    System sys(recoveryConfig());
    // Corrupt every to-memory frame forever: retries fail, every
    // re-key attempt's handshake frames are destroyed too, and after
    // the re-key budget the channel must be taken out of service
    // (with the event queue draining instead of retrying forever).
    interceptRequests(sys, [](WireMessage &msg) {
        msg.cipherHeader[0] ^= 0x01;
        return true;
    });

    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();

    EXPECT_FALSE(completed);
    EXPECT_GE(sys.procSide()->rekeysStartedCount(), 1u);
    EXPECT_EQ(sys.procSide()->rekeysCompletedCount(), 0u);
    EXPECT_EQ(sys.procSide()->quarantineCount(), 1u);
    EXPECT_TRUE(sys.procSide()->channelQuarantined(0));

    // The quarantined channel refuses new work without hanging.
    bool late = false;
    sys.timedLoad(0, 0x40000100, [&](Tick) { late = true; });
    sys.eventQueue().run();
    EXPECT_FALSE(late);
}

TEST(Recovery, DisabledRecoveryKeepsFailStopSemantics)
{
    SystemConfig cfg = recoveryConfig();
    cfg.obfusmem.recovery.enabled = false;
    System sys(cfg);
    unsigned frames = 0;
    interceptRequests(sys, [&frames](WireMessage &) {
        return ++frames > 2;
    });

    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();

    EXPECT_FALSE(completed);
    EXPECT_EQ(sys.procSide()->retransmitCount(), 0u);
}

// --- Whole-system runs ----------------------------------------------

TEST(Recovery, FaultInjectedRunServicesAllRequestsAndAuditsClean)
{
    SystemConfig cfg = recoveryConfig();
    cfg.channels = 2;
    cfg.attachAuditor = true;
    cfg.faults.seed = 7;
    cfg.faults.dropProb = 1e-3;
    cfg.faults.corruptProb = 1e-3;
    System sys(cfg);
    sys.run(); // run() panics internally if any core fails to finish

    ASSERT_NE(sys.auditor(), nullptr);
    EXPECT_TRUE(sys.auditor()->finalize());
    EXPECT_EQ(sys.auditor()->totalViolations(), 0u);
    // The run must actually have exercised recovery, not dodged it.
    EXPECT_GE(sys.procSide()->retransmitCount()
                  + sys.procSide()->resyncCount()
                  + sys.memSides()[0]->resyncCount()
                  + sys.memSides()[1]->resyncCount(),
              1u);
    EXPECT_FALSE(sys.procSide()->channelQuarantined(0));
    EXPECT_FALSE(sys.procSide()->channelQuarantined(1));
}

TEST(Recovery, DuplicateAndDelayFaultsAlsoRecover)
{
    SystemConfig cfg = recoveryConfig();
    cfg.attachAuditor = true;
    cfg.faults.seed = 21;
    cfg.faults.dupProb = 1e-3;
    cfg.faults.delayProb = 1e-3;
    System sys(cfg);
    sys.run();

    ASSERT_NE(sys.auditor(), nullptr);
    EXPECT_TRUE(sys.auditor()->finalize());
    EXPECT_FALSE(sys.procSide()->channelQuarantined(0));
}

TEST(Recovery, UniformSchemeFaultRunRecovers)
{
    SystemConfig cfg = recoveryConfig();
    cfg.obfusmem.uniformPackets = true;
    cfg.attachAuditor = true;
    cfg.faults.seed = 11;
    cfg.faults.dropProb = 1e-3;
    cfg.faults.corruptProb = 1e-3;
    System sys(cfg);
    sys.run();

    ASSERT_NE(sys.auditor(), nullptr);
    EXPECT_TRUE(sys.auditor()->finalize());
    EXPECT_EQ(sys.auditor()->totalViolations(), 0u);
    EXPECT_FALSE(sys.procSide()->channelQuarantined(0));
}

TEST(Recovery, ZeroFaultWireTraceIdenticalWithRecoveryOnAndOff)
{
    // The recovery layer must be invisible on the wire until a fault
    // actually occurs: same ticks, same sizes, same ciphertext bits.
    struct Capture : BusProbe
    {
        std::vector<std::tuple<Tick, BusDir, uint32_t, uint64_t, bool,
                               unsigned>>
            trace;
        void observe(const BusSnoop &s) override
        {
            trace.emplace_back(s.when, s.dir, s.bytes, s.wireAddr,
                               s.wireIsWrite, s.channel);
        }
    };

    auto run_one = [](bool recovery_on) {
        SystemConfig cfg;
        cfg.mode = ProtectionMode::ObfusMemAuth;
        cfg.benchmark = "milc";
        cfg.instrPerCore = 5000;
        cfg.cores = 2;
        cfg.channels = 2;
        cfg.obfusmem.recovery.enabled = recovery_on;
        System sys(cfg);
        Capture cap;
        for (auto &bus : sys.channelBuses())
            bus->attachProbe(&cap);
        sys.run();
        return cap.trace;
    };

    auto with = run_one(true);
    auto without = run_one(false);
    ASSERT_GT(with.size(), 100u);
    EXPECT_EQ(with, without);
}

TEST(Recovery, FaultKnobsReadFromEnvironment)
{
    setenv("OBFUSMEM_FAULT_SEED", "99", 1);
    setenv("OBFUSMEM_FAULT_DROP", "0.25", 1);
    setenv("OBFUSMEM_FAULT_CORRUPT", "0.125", 1);
    setenv("OBFUSMEM_FAULT_DUP", "bogus", 1); // -> default 0
    FaultInjector::Params p = FaultInjector::Params::fromEnv();
    unsetenv("OBFUSMEM_FAULT_SEED");
    unsetenv("OBFUSMEM_FAULT_DROP");
    unsetenv("OBFUSMEM_FAULT_CORRUPT");
    unsetenv("OBFUSMEM_FAULT_DUP");

    EXPECT_EQ(p.seed, 99u);
    EXPECT_DOUBLE_EQ(p.dropProb, 0.25);
    EXPECT_DOUBLE_EQ(p.corruptProb, 0.125);
    EXPECT_DOUBLE_EQ(p.dupProb, 0.0);
    EXPECT_TRUE(p.any());
}
