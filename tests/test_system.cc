/**
 * @file
 * Full-system integration tests across every protection mode.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "system/system.hh"

using namespace obfusmem;

namespace {

SystemConfig
quickConfig(ProtectionMode mode, const std::string &bench = "milc")
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.benchmark = bench;
    cfg.cores = 2;
    cfg.instrPerCore = 20000;
    if (mode == ProtectionMode::OramDetailed) {
        // Size the tree for the workload: the functional structure
        // keeps every distinct block ever touched, so a tree whose
        // capacity is below that count inflates the stash without
        // bound (and now fail-stops, as a real controller would
        // deadlock). levels=14 holds ~65k blocks, far above what
        // 2x3000 instructions touch.
        cfg.oramDetailed.oram.levels = 14;
        cfg.oramDetailed.oram.stashLimit = 500;
        cfg.instrPerCore = 3000;
    }
    if (mode == ProtectionMode::FlatOram
        || mode == ProtectionMode::WriteOnlyOram) {
        cfg.instrPerCore = 3000;
    }
    return cfg;
}

class AllModes : public ::testing::TestWithParam<ProtectionMode>
{
};

} // namespace

TEST_P(AllModes, WorkloadRunsToCompletion)
{
    System sys(quickConfig(GetParam()));
    auto result = sys.run();
    EXPECT_EQ(result.instructions,
              sys.config().cores * sys.config().instrPerCore);
    EXPECT_GT(result.execTicks, 0u);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_GT(result.llcMisses, 0u);
}

TEST_P(AllModes, DataSurvivesTheFullPath)
{
    System sys(quickConfig(GetParam()));
    DataBlock data;
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(0xc0 ^ (i * 7));
    sys.timedStore(0, 0x8000, data, [](Tick) {});
    sys.eventQueue().run();
    sys.flushAndDrain();
    EXPECT_EQ(sys.functionalRead(0x8000), data);
}

TEST_P(AllModes, StatsDumpMentionsCoreComponents)
{
    System sys(quickConfig(GetParam()));
    sys.run();
    std::ostringstream oss;
    sys.dumpStats(oss);
    EXPECT_NE(oss.str().find("system.caches.llcMisses"),
              std::string::npos);
    EXPECT_NE(oss.str().find("system.core0.loads"),
              std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllModes,
    ::testing::Values(ProtectionMode::Unprotected,
                      ProtectionMode::EncryptionOnly,
                      ProtectionMode::ObfusMem,
                      ProtectionMode::ObfusMemAuth,
                      ProtectionMode::OramFixed,
                      ProtectionMode::OramDetailed,
                      ProtectionMode::FlatOram,
                      ProtectionMode::WriteOnlyOram),
    [](const ::testing::TestParamInfo<ProtectionMode> &info) {
        std::string name = protectionModeName(info.param);
        for (char &c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

TEST(SystemInvariants, MpkiIndependentOfProtection)
{
    // Access-pattern obfuscation must not change what the caches do.
    auto mpki = [](ProtectionMode mode) {
        System sys(quickConfig(mode));
        return sys.run().mpki;
    };
    double base = mpki(ProtectionMode::Unprotected);
    EXPECT_NEAR(mpki(ProtectionMode::ObfusMemAuth), base, 1e-9);
    EXPECT_NEAR(mpki(ProtectionMode::OramFixed), base, 1e-9);
}

TEST(SystemInvariants, ProtectionCostOrdering)
{
    // The paper's headline: unprotected <= ObfusMem variants << ORAM.
    auto time = [](ProtectionMode mode) {
        System sys(quickConfig(mode, "soplex"));
        return sys.run().execTicks;
    };
    Tick base = time(ProtectionMode::Unprotected);
    Tick obfus_auth = time(ProtectionMode::ObfusMemAuth);
    Tick oram = time(ProtectionMode::OramFixed);
    EXPECT_LE(base, obfus_auth);
    EXPECT_LT(obfus_auth * 3, oram); // ~order of magnitude in paper
}

TEST(SystemInvariants, OramWriteAmplificationObfusMemNone)
{
    SystemConfig cfg = quickConfig(ProtectionMode::ObfusMemAuth);
    System obfus(cfg);
    auto obfus_result = obfus.run();

    System base(quickConfig(ProtectionMode::Unprotected));
    auto base_result = base.run();

    System oram(quickConfig(ProtectionMode::OramFixed));
    oram.run();

    // ObfusMem: zero write amplification (equal up to end-of-run
    // row-buffer state).
    EXPECT_LT(obfus_result.cellWrites,
              base_result.cellWrites * 1.15 + 200);
    // ORAM (fixed model): ~100 blocks written per access.
    uint64_t oram_writes = oram.oramFixed()->blocksWritten();
    uint64_t accesses = oram.oramFixed()->accessCount();
    EXPECT_EQ(oram_writes, accesses * 100);
}

TEST(SystemInvariants, CapacityOverheadComparison)
{
    // Table 4: ORAM >= 100% storage overhead, ObfusMem zero (one
    // reserved dummy block per channel).
    PathOram::Params oram_params;
    oram_params.levels = 24;
    PathOram oram(oram_params);
    EXPECT_GE(oram.physicalBlocks(), 2 * oram.capacityBlocks());

    SystemConfig cfg = quickConfig(ProtectionMode::ObfusMemAuth);
    cfg.channels = 4;
    uint64_t reserved = cfg.channels * blockBytes;
    EXPECT_LT(static_cast<double>(reserved) / cfg.capacityBytes,
              1e-6);
}

TEST(SystemInvariants, AverageGapTracksMissRate)
{
    System fast(quickConfig(ProtectionMode::Unprotected, "hmmer"));
    auto low_traffic = fast.run();
    System heavy(quickConfig(ProtectionMode::Unprotected, "soplex"));
    auto high_traffic = heavy.run();
    EXPECT_GT(low_traffic.avgGapNs, high_traffic.avgGapNs);
}

TEST(SystemInvariants, DeterministicAcrossRuns)
{
    System a(quickConfig(ProtectionMode::ObfusMemAuth));
    System b(quickConfig(ProtectionMode::ObfusMemAuth));
    auto ra = a.run();
    auto rb = b.run();
    EXPECT_EQ(ra.execTicks, rb.execTicks);
    EXPECT_EQ(ra.llcMisses, rb.llcMisses);
    EXPECT_EQ(ra.cellWrites, rb.cellWrites);
}

TEST(SystemInvariants, SeedChangesChangeTiming)
{
    SystemConfig cfg = quickConfig(ProtectionMode::Unprotected);
    System a(cfg);
    cfg.seed = 1234;
    System b(cfg);
    EXPECT_NE(a.run().execTicks, b.run().execTicks);
}

TEST(SystemConfig, MemoryLayoutRegionsDisjoint)
{
    SystemConfig cfg;
    // Workloads < counters < BMT < ORAM tree < capacity.
    uint64_t workload_end =
        cfg.workloadBase(cfg.cores - 1) + cfg.workloadRegionBytes();
    EXPECT_LE(workload_end, cfg.counterRegionBase());
    EXPECT_LT(cfg.counterRegionBase(), cfg.bmtRegionBase());
    EXPECT_LT(cfg.bmtRegionBase(), cfg.oramTreeBase());
    EXPECT_LT(cfg.oramTreeBase(), cfg.capacityBytes);
}

TEST(SystemConfig, ModeNamesAreDistinct)
{
    std::set<std::string> names;
    for (const auto &info : allBackendInfos())
        names.insert(info.name);
    EXPECT_EQ(names.size(), allBackendInfos().size());
    EXPECT_EQ(names.size(), 8u);
}

TEST(SystemConfig, BackendRegistryRoundTrips)
{
    for (const auto &info : allBackendInfos()) {
        EXPECT_EQ(backendInfo(info.mode).name, info.name);
        const ObliviousBackendInfo *by_name =
            backendInfoByName(info.name);
        ASSERT_NE(by_name, nullptr);
        EXPECT_EQ(by_name->mode, info.mode);
    }
    // Documented aliases resolve too; junk does not.
    EXPECT_EQ(backendInfoByName("encryption")->mode,
              ProtectionMode::EncryptionOnly);
    EXPECT_EQ(backendInfoByName("obfusmem-auth")->mode,
              ProtectionMode::ObfusMemAuth);
    EXPECT_EQ(backendInfoByName("no-such-backend"), nullptr);
}
