/**
 * @file
 * PCM controller tests: row-buffer timing, cell-write-on-eviction,
 * read priority, forwarding, and energy/wear accounting.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mem/address_map.hh"
#include "mem/backing_store.hh"
#include "mem/pcm_controller.hh"

using namespace obfusmem;

namespace {

constexpr uint64_t GB = 1ull << 30;

class PcmFixture : public ::testing::Test
{
  protected:
    PcmFixture()
        : stats("test", nullptr), map(8 * GB, 1), store(8 * GB),
          pcm("pcm", eq, &stats, 0, map, PcmParams{}, store)
    {}

    /** Issue a read and return its completion tick. */
    Tick
    readAt(uint64_t addr)
    {
        Tick done = 0;
        MemPacket pkt;
        pkt.cmd = MemCmd::Read;
        pkt.addr = addr;
        pkt.issueTick = eq.curTick();
        pcm.access(std::move(pkt),
                   [&done, this](MemPacket &&) { done = eq.curTick(); });
        eq.run();
        return done;
    }

    void
    writeAt(uint64_t addr, const DataBlock &data)
    {
        MemPacket pkt;
        pkt.cmd = MemCmd::Write;
        pkt.addr = addr;
        pkt.data = data;
        pkt.issueTick = eq.curTick();
        pcm.access(std::move(pkt), [](MemPacket &&) {});
        eq.run();
    }

    EventQueue eq;
    statistics::Group stats;
    AddressMap map;
    BackingStore store;
    PcmController pcm;
    PcmParams params;
};

} // namespace

TEST_F(PcmFixture, ColdReadPaysActivation)
{
    Tick start = eq.curTick();
    Tick done = readAt(0);
    // tRCD (60) + tCL (13.75) + tBURST (5) = 78.75 ns.
    EXPECT_EQ(done - start, params.tRCD + params.tCL + params.tBURST);
}

TEST_F(PcmFixture, RowHitSkipsActivation)
{
    readAt(0);
    Tick start = eq.curTick();
    Tick done = readAt(64); // same 1 KB row
    EXPECT_EQ(done - start, params.tCL + params.tBURST);
}

TEST_F(PcmFixture, RowConflictCleanJustActivates)
{
    readAt(0);
    // A different row in the same bank (same channel/rank/bank but
    // row +1): with RoRaBaChCo, rows are the top bits.
    DecodedAddr loc = map.decode(0);
    loc.row += 1;
    Tick start = eq.curTick();
    Tick done = readAt(map.encode(loc));
    EXPECT_EQ(done - start, params.tRCD + params.tCL + params.tBURST);
}

TEST_F(PcmFixture, DirtyRowEvictionWritesCells)
{
    DataBlock data{};
    data[0] = 1;
    writeAt(0, data);
    EXPECT_EQ(pcm.cellBlockWrites(), 0u); // still in the row buffer

    // Conflict the row: the dirty row buffer must be written back.
    DecodedAddr loc = map.decode(0);
    loc.row += 1;
    Tick start = eq.curTick();
    Tick done = readAt(map.encode(loc));
    EXPECT_EQ(pcm.cellBlockWrites(), 1u);
    // tWR (150) + tRCD + tCL + tBURST.
    EXPECT_EQ(done - start,
              params.tWR + params.tRCD + params.tCL + params.tBURST);
}

TEST_F(PcmFixture, MultipleDirtyBlocksCountedOnEviction)
{
    DataBlock data{};
    for (int i = 0; i < 5; ++i)
        writeAt(i * 64, data); // five blocks of the same row
    DecodedAddr loc = map.decode(0);
    loc.row += 1;
    readAt(map.encode(loc));
    EXPECT_EQ(pcm.cellBlockWrites(), 5u);
}

TEST_F(PcmFixture, FunctionalReadAfterWrite)
{
    DataBlock data;
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i ^ 0x5a);
    writeAt(0x12340, data);

    DataBlock out{};
    MemPacket pkt;
    pkt.cmd = MemCmd::Read;
    pkt.addr = 0x12340;
    pcm.access(std::move(pkt),
               [&out](MemPacket &&resp) { out = resp.data; });
    eq.run();
    EXPECT_EQ(out, data);
}

TEST_F(PcmFixture, ReadUnderWriteForwardsYoungest)
{
    // Enqueue two writes to the same block, then a read, without
    // draining in between.
    DataBlock first{}, second{};
    first[0] = 1;
    second[0] = 2;
    MemPacket w1;
    w1.cmd = MemCmd::Write;
    w1.addr = 0x40;
    w1.data = first;
    pcm.access(std::move(w1), [](MemPacket &&) {});
    MemPacket w2;
    w2.cmd = MemCmd::Write;
    w2.addr = 0x40;
    w2.data = second;
    pcm.access(std::move(w2), [](MemPacket &&) {});

    DataBlock out{};
    MemPacket rd;
    rd.cmd = MemCmd::Read;
    rd.addr = 0x40;
    pcm.access(std::move(rd),
               [&out](MemPacket &&resp) { out = resp.data; });
    eq.run();
    EXPECT_EQ(out[0], 2);
}

TEST_F(PcmFixture, BanksOverlapServiceTime)
{
    // Two cold reads to different banks should overlap; to the same
    // bank they serialize.
    DecodedAddr bank0 = map.decode(0);
    DecodedAddr bank1 = bank0;
    bank1.bank = 1;
    DecodedAddr row1 = bank0;
    row1.row += 1;

    Tick done_a = 0, done_b = 0;
    MemPacket a;
    a.cmd = MemCmd::Read;
    a.addr = map.encode(bank0);
    pcm.access(std::move(a),
               [&](MemPacket &&) { done_a = eq.curTick(); });
    MemPacket b;
    b.cmd = MemCmd::Read;
    b.addr = map.encode(bank1);
    pcm.access(std::move(b),
               [&](MemPacket &&) { done_b = eq.curTick(); });
    eq.run();
    // Parallel banks: both finish at the cold-read latency.
    EXPECT_EQ(done_a, done_b);

    Tick start = eq.curTick();
    Tick done_c = 0, done_d = 0;
    MemPacket c;
    c.cmd = MemCmd::Read;
    c.addr = map.encode(bank0); // row hit now
    pcm.access(std::move(c),
               [&](MemPacket &&) { done_c = eq.curTick(); });
    MemPacket d;
    d.cmd = MemCmd::Read;
    d.addr = map.encode(row1); // same bank, other row
    pcm.access(std::move(d),
               [&](MemPacket &&) { done_d = eq.curTick(); });
    eq.run();
    // Same bank: the second access waits for the first.
    EXPECT_GT(done_d - start,
              params.tRCD + params.tCL + params.tBURST);
    (void)done_c;
}

TEST_F(PcmFixture, EnergyAccounting)
{
    EXPECT_EQ(pcm.energyPj(), 0.0);
    readAt(0); // one activation
    EXPECT_DOUBLE_EQ(pcm.energyPj(), params.readEnergyPj);

    DataBlock data{};
    writeAt(64, data); // row hit write, no cell energy yet
    DecodedAddr loc = map.decode(0);
    loc.row += 1;
    readAt(map.encode(loc)); // evict dirty + activate
    EXPECT_DOUBLE_EQ(pcm.energyPj(),
                     2 * params.readEnergyPj + params.writeEnergyPj);
}

TEST_F(PcmFixture, WearTrackingFindsHotRow)
{
    DataBlock data{};
    DecodedAddr loc = map.decode(0);
    DecodedAddr other = loc;
    other.row += 1;
    // Bounce between two rows, dirtying row 0 each time.
    for (int i = 0; i < 4; ++i) {
        writeAt(map.encode(loc), data);
        readAt(map.encode(other));
    }
    EXPECT_EQ(pcm.maxRowCellWrites(), 4u);
}

TEST_F(PcmFixture, WriteEnergyRatioIs6point8)
{
    EXPECT_NEAR(params.writeEnergyPj / params.readEnergyPj, 6.8, 1e-9);
}

TEST(StartGapLeveler, IdentityBeforeAnyMoves)
{
    StartGapLeveler lvl(100, 10);
    for (uint64_t r = 0; r < 100; ++r)
        EXPECT_EQ(lvl.map(r), r);
    EXPECT_EQ(lvl.gapPosition(), 100u);
}

TEST(StartGapLeveler, MovesEveryPeriod)
{
    StartGapLeveler lvl(100, 10);
    for (int i = 0; i < 9; ++i)
        EXPECT_FALSE(lvl.recordWrite());
    EXPECT_TRUE(lvl.recordWrite());
    EXPECT_EQ(lvl.gapMoves(), 1u);
    EXPECT_EQ(lvl.gapPosition(), 99u);
}

TEST(StartGapLeveler, MappingStaysBijective)
{
    StartGapLeveler lvl(64, 1); // move on every write
    for (int round = 0; round < 200; ++round) {
        std::set<uint64_t> physical;
        for (uint64_t r = 0; r < 64; ++r) {
            uint64_t p = lvl.map(r);
            EXPECT_LT(p, lvl.physicalRows());
            EXPECT_NE(p, lvl.gapPosition());
            physical.insert(p);
        }
        EXPECT_EQ(physical.size(), 64u); // injective
        lvl.recordWrite();
    }
}

TEST(StartGapLeveler, FullRotationAdvancesStart)
{
    StartGapLeveler lvl(8, 1);
    // 9 moves walk the gap 8->0 and then wrap, bumping start.
    for (int i = 0; i < 9; ++i)
        lvl.recordWrite();
    EXPECT_EQ(lvl.startOffset(), 1u);
    EXPECT_EQ(lvl.gapPosition(), 8u);
}

TEST(StartGapLeveler, HotRowWearSpreadsOverTime)
{
    // Hammer one logical row; with the gap walking, the physical row
    // it lands on keeps changing.
    StartGapLeveler lvl(32, 4);
    std::map<uint64_t, int> wear;
    const int writes = 10 * 33 * 4; // ten full gap rotations
    for (int w = 0; w < writes; ++w) {
        ++wear[lvl.map(7)];
        lvl.recordWrite();
    }
    int hottest = 0;
    for (auto &[row, count] : wear)
        hottest = std::max(hottest, count);
    // Without leveling all writes would hit one row; each full
    // rotation shifts the hot row to a fresh physical location.
    EXPECT_GE(wear.size(), 9u);
    EXPECT_LT(hottest, writes / 4);
}

TEST_F(PcmFixture, WearLevelingSpreadsHotRow)
{
    PcmParams leveled = params;
    leveled.wearLeveling = true;
    leveled.gapMovePeriod = 4;
    PcmController pcm2("pcm2", eq, &stats, 0, map, leveled, store);

    DecodedAddr loc = map.decode(0);
    DecodedAddr other = loc;
    other.row += 1;
    DataBlock data{};
    auto hammer = [&](PcmController &target) {
        for (int i = 0; i < 64; ++i) {
            MemPacket w;
            w.cmd = MemCmd::Write;
            w.addr = map.encode(loc);
            w.data = data;
            target.access(std::move(w), [](MemPacket &&) {});
            MemPacket r;
            r.cmd = MemCmd::Read;
            r.addr = map.encode(other);
            target.access(std::move(r), [](MemPacket &&) {});
            eq.run();
        }
    };
    hammer(pcm);  // no leveling
    hammer(pcm2); // leveling
    // With 32k rows per bank the rotation is deliberately slow (that
    // is the point of Start-Gap's low overhead); within a short test
    // we can only see that the gap machinery engages. Long-run
    // spreading is covered by StartGapLeveler.HotRowWearSpreadsOverTime.
    EXPECT_GE(pcm.maxRowCellWrites(), pcm2.maxRowCellWrites());
    EXPECT_GT(pcm2.stats().scalarValue("gapMoves"), 0.0);
    EXPECT_GT(pcm2.cellBlockWrites(), pcm.cellBlockWrites());
}
