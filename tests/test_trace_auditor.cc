/**
 * @file
 * Trace-auditor tests: the machine-checked obliviousness argument.
 *
 * Both directions matter and both are proven here: the auditor must
 * pass on every obfuscated configuration (no false alarms), and must
 * deterministically flag the unprotected path and injected attacks -
 * a dropped request group, a replayed reply stream, a bit-flipped
 * header, and a duplicated (replayed) request message.
 */

#include <gtest/gtest.h>
#include <sstream>

#include "system/system.hh"

using namespace obfusmem;
using check::Invariant;
using check::TraceAuditor;
using check::Violation;

namespace {

SystemConfig
auditedConfig(ProtectionMode mode)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.benchmark = "milc";
    cfg.instrPerCore = 20000;
    cfg.cores = 2;
    cfg.attachAuditor = true;
    return cfg;
}

DataBlock
patternBlock(uint8_t seed)
{
    DataBlock b;
    for (size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<uint8_t>(seed + i * 13);
    return b;
}

/** Fetch-then-writeback traffic: the classic reuse leak. */
void
driveReusePattern(System &sys)
{
    for (int i = 0; i < 64; ++i) {
        sys.timedStore(0, 0x20000000 + i * 64ull, patternBlock(
                           static_cast<uint8_t>(i)),
                       [](Tick) {});
    }
    sys.eventQueue().run();
    sys.flushAndDrain();
}

bool
hasInvariant(const TraceAuditor &auditor, Invariant inv)
{
    return auditor.violationCountFor(inv) > 0;
}

} // namespace

TEST(TraceAuditor, NotAttachedByDefault)
{
    SystemConfig cfg = auditedConfig(ProtectionMode::ObfusMemAuth);
    cfg.attachAuditor = false;
    System sys(cfg);
    EXPECT_EQ(sys.auditor(), nullptr);
}

TEST(TraceAuditor, PassesOnObfuscatedRun)
{
    System sys(auditedConfig(ProtectionMode::ObfusMemAuth));
    sys.run();
    TraceAuditor *auditor = sys.auditor();
    ASSERT_NE(auditor, nullptr);
    EXPECT_TRUE(auditor->finalize());
    EXPECT_TRUE(auditor->ok());
    EXPECT_TRUE(auditor->violations().empty());
    EXPECT_GT(auditor->messagesAudited(), 100u);
}

TEST(TraceAuditor, PassesWithoutAuthToo)
{
    // Counter discipline and pairing hold with the MAC disabled; only
    // tamper *detection* needs auth.
    System sys(auditedConfig(ProtectionMode::ObfusMem));
    sys.run();
    EXPECT_TRUE(sys.auditor()->finalize());
}

TEST(TraceAuditor, PassesOnUniformPacketScheme)
{
    SystemConfig cfg = auditedConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.uniformPackets = true;
    System sys(cfg);
    sys.run();
    EXPECT_TRUE(sys.auditor()->finalize())
        << "uniform scheme must satisfy its own wire discipline";
}

TEST(TraceAuditor, PassesOnMultiChannelOptScheme)
{
    SystemConfig cfg = auditedConfig(ProtectionMode::ObfusMemAuth);
    cfg.channels = 2;
    System sys(cfg);
    sys.run();
    TraceAuditor *auditor = sys.auditor();
    EXPECT_TRUE(auditor->finalize());
    // OPT fills idle channels, so solo-channel buckets stay rare.
    EXPECT_LE(auditor->soloBucketFraction(), 0.05);
}

TEST(TraceAuditor, PassesUnderEveryDummyPolicy)
{
    for (DummyPolicy policy : {DummyPolicy::Fixed,
                               DummyPolicy::Original,
                               DummyPolicy::Random}) {
        SystemConfig cfg = auditedConfig(ProtectionMode::ObfusMemAuth);
        cfg.obfusmem.dummyPolicy = policy;
        System sys(cfg);
        sys.run();
        EXPECT_TRUE(sys.auditor()->finalize())
            << "policy " << static_cast<int>(policy);
    }
}

TEST(TraceAuditor, FlagsPlainPathAsLeaky)
{
    System sys(auditedConfig(ProtectionMode::Unprotected));
    driveReusePattern(sys);
    TraceAuditor *auditor = sys.auditor();
    EXPECT_FALSE(auditor->finalize());
    // Plaintext addresses repeat on the wires and request types are
    // visible: both invariants must fire.
    EXPECT_TRUE(hasInvariant(*auditor, Invariant::PadFreshness));
    EXPECT_TRUE(
        hasInvariant(*auditor, Invariant::ReadThenWritePairing));
}

TEST(TraceAuditor, FlagsEncryptionOnlyAsLeaky)
{
    // The paper's motivation, machine-checked: memory encryption
    // alone does not make the trace oblivious.
    System sys(auditedConfig(ProtectionMode::EncryptionOnly));
    driveReusePattern(sys);
    EXPECT_FALSE(sys.auditor()->finalize());
    EXPECT_TRUE(
        hasInvariant(*sys.auditor(), Invariant::PadFreshness));
}

TEST(TraceAuditor, ViolationReportCarriesContext)
{
    System sys(auditedConfig(ProtectionMode::Unprotected));
    driveReusePattern(sys);
    TraceAuditor *auditor = sys.auditor();
    auditor->finalize();
    ASSERT_FALSE(auditor->violations().empty());
    const Violation &v = auditor->violations().front();
    std::ostringstream oss;
    oss << v;
    EXPECT_NE(oss.str().find("invariant="), std::string::npos);
    EXPECT_NE(oss.str().find("channel="), std::string::npos);
    EXPECT_FALSE(v.detail.empty());

    std::ostringstream report;
    EXPECT_FALSE(auditor->report(report));
    EXPECT_NE(report.str().find("FAIL"), std::string::npos);
}

TEST(TraceAuditor, DroppedMessageFlagged)
{
    SystemConfig cfg = auditedConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.recovery.enabled = false; // pin fail-stop semantics
    System sys(cfg);
    DataBlock data = patternBlock(1);
    sys.timedStore(0, 0x5000, data, [](Tick) {});
    sys.eventQueue().run();
    sys.flushAndDrain();

    sys.memSides()[0]->skewRequestCounter(6); // one dropped group
    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();

    EXPECT_FALSE(completed);
    TraceAuditor *auditor = sys.auditor();
    EXPECT_FALSE(auditor->finalize());
    EXPECT_TRUE(
        hasInvariant(*auditor, Invariant::EndpointIncident));
    // The endpoints consumed different counter sets: desync is also
    // visible structurally, not just via the rejected message.
    EXPECT_TRUE(hasInvariant(*auditor, Invariant::CounterSync));
}

TEST(TraceAuditor, ReplayedReplyStreamFlagged)
{
    SystemConfig cfg = auditedConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.recovery.enabled = false; // pin fail-stop semantics
    System sys(cfg);
    sys.procSide()->skewResponseCounter(0, 5); // one lost reply
    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();

    EXPECT_FALSE(completed);
    TraceAuditor *auditor = sys.auditor();
    EXPECT_FALSE(auditor->finalize());
    EXPECT_TRUE(
        hasInvariant(*auditor, Invariant::EndpointIncident));
    EXPECT_TRUE(hasInvariant(*auditor, Invariant::CounterSync));
}

TEST(TraceAuditor, BitFlippedHeaderFlagged)
{
    System sys(auditedConfig(ProtectionMode::ObfusMemAuth));
    // Man-in-the-middle: flip one ciphertext bit on every request
    // message crossing channel 0.
    ObfusMemMemSide *side = sys.memSides()[0].get();
    sys.procSide()->setRequestTarget(0, [side](WireMessage &&msg) {
        msg.cipherHeader[0] ^= 0x01;
        side->receiveMessage(std::move(msg));
    });

    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();

    EXPECT_FALSE(completed);
    // The memory side must reject the message (MAC mismatch or
    // unparseable header) and the auditor must have the incident.
    EXPECT_GE(sys.memSides()[0]->tamperDetections()
                  + sys.memSides()[0]->desyncEvents(),
              1u);
    TraceAuditor *auditor = sys.auditor();
    EXPECT_FALSE(auditor->finalize());
    EXPECT_TRUE(
        hasInvariant(*auditor, Invariant::EndpointIncident));
}

TEST(TraceAuditor, ReplayedRequestMessageFlagged)
{
    SystemConfig cfg = auditedConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.recovery.enabled = false; // pin fail-stop semantics
    System sys(cfg);
    // Man-in-the-middle: deliver every request message twice. The
    // memory side burns pads for the duplicates, so its counters run
    // ahead and the streams diverge.
    ObfusMemMemSide *side = sys.memSides()[0].get();
    sys.procSide()->setRequestTarget(0, [side](WireMessage &&msg) {
        WireMessage replay = msg;
        side->receiveMessage(std::move(msg));
        side->receiveMessage(std::move(replay));
    });

    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();

    EXPECT_FALSE(completed);
    TraceAuditor *auditor = sys.auditor();
    EXPECT_FALSE(auditor->finalize());
    EXPECT_TRUE(
        hasInvariant(*auditor, Invariant::EndpointIncident));
    EXPECT_TRUE(hasInvariant(*auditor, Invariant::CounterSync));
}
