/**
 * @file
 * Unit tests for the two write-only ORAM structures: Flat ORAM
 * (randomized free-slot placement) and the deterministic stash-free
 * write-only ORAM (holding area + round-robin refresh), plus their
 * phased timing controllers.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "oram/flat_oram.hh"
#include "oram/oram_controller.hh"
#include "oram/write_only_oram.hh"
#include "util/random.hh"

using namespace obfusmem;

namespace {

DataBlock
patternBlock(uint8_t tag)
{
    DataBlock d{};
    for (size_t i = 0; i < d.size(); ++i)
        d[i] = static_cast<uint8_t>(tag ^ (i * 3));
    return d;
}

/** MemSink that completes every request immediately (zero latency). */
class ImmediateSink : public MemSink
{
  public:
    void access(MemPacket pkt, PacketCallback cb) override
    {
        ++count;
        if (pkt.isRead())
            ++reads;
        else
            ++writes;
        cb(std::move(pkt));
    }

    uint64_t count = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
};

} // namespace

// =====================================================================
// FlatOram
// =====================================================================

TEST(FlatOram, ReadAfterWrite)
{
    FlatOram::Params params;
    params.capacityBlocks = 64;
    FlatOram oram(params);
    DataBlock d = patternBlock(0x11);
    oram.write(42, d);
    EXPECT_EQ(oram.read(42), d);
}

TEST(FlatOram, NeverWrittenReadsDeterministicJunk)
{
    FlatOram::Params params;
    params.capacityBlocks = 64;
    FlatOram a(params), b(params);
    EXPECT_EQ(a.read(7), b.read(7));
    EXPECT_EQ(a.read(7), junkDataBlock(7));
    // A read miss still costs one physical read.
    EXPECT_EQ(a.lastReadSlots().size(), 1u);
    EXPECT_TRUE(a.lastWriteSlots().empty());
}

TEST(FlatOram, MatchesReferenceMapAndInvariant)
{
    FlatOram::Params params;
    params.capacityBlocks = 256;
    FlatOram oram(params);
    Random rng(21);
    std::map<uint64_t, DataBlock> reference;

    for (int op = 0; op < 2000; ++op) {
        uint64_t block = rng.randUnder(params.capacityBlocks);
        if (rng.chance(0.5)) {
            DataBlock d;
            rng.fillBytes(d.data(), d.size());
            oram.write(block, d);
            reference[block] = d;
        } else if (reference.count(block)) {
            EXPECT_EQ(oram.read(block), reference[block]);
        }
        if (op % 250 == 249) {
            ASSERT_TRUE(oram.checkInvariant()) << "op " << op;
        }
    }
    EXPECT_TRUE(oram.checkInvariant());
}

TEST(FlatOram, WritesRelocateToFreshRandomSlots)
{
    FlatOram::Params params;
    params.capacityBlocks = 1 << 10;
    FlatOram oram(params);
    DataBlock d{};
    oram.write(5, d);
    int moves = 0;
    auto prev = oram.slotOf(5);
    for (int i = 0; i < 50; ++i) {
        oram.write(5, d);
        ASSERT_EQ(oram.lastWriteSlots().size(), 1u);
        auto cur = oram.slotOf(5);
        EXPECT_EQ(oram.lastWriteSlots()[0], *cur);
        if (cur != prev)
            ++moves;
        prev = cur;
    }
    // 2048 physical slots, nearly empty: re-landing on the same slot
    // is a ~1/2048 event per write.
    EXPECT_GT(moves, 45);
}

TEST(FlatOram, WriteTraceIndependentOfAddresses)
{
    // The write-only obliviousness argument, concretely: with the
    // same RNG seed and the same write/no-rewrite structure, two
    // instances serving *disjoint* address sets emit the identical
    // physical slot sequence.
    FlatOram::Params params;
    params.capacityBlocks = 512;
    FlatOram a(params), b(params);
    DataBlock d{};
    for (uint64_t i = 0; i < 400; ++i) {
        a.write(i, d);        // blocks 0..399
        b.write(3000 + i, d); // blocks 3000..3399
        ASSERT_EQ(a.lastWriteSlots(), b.lastWriteSlots())
            << "write " << i;
    }
}

TEST(FlatOram, ProbeCountStaysNearDesignExpectation)
{
    FlatOram::Params params;
    params.capacityBlocks = 1 << 12;
    params.utilization = 0.5;
    FlatOram oram(params);
    DataBlock d{};
    // Fill to the full logical capacity: occupancy reaches 50%.
    for (uint64_t b = 0; b < params.capacityBlocks; ++b)
        oram.write(b, d);
    EXPECT_DOUBLE_EQ(oram.occupancy(), 0.5);
    // Expected probes per write is 1/(1-occupancy) <= 2; the observed
    // worst case stays far below the 128-probe fail-stop bound.
    EXPECT_LT(oram.maxProbeCount(), 40u);
    EXPECT_EQ(oram.physicalWrites(), params.capacityBlocks);
}

TEST(FlatOram, SerializeRoundTripsAndReplaysIdentically)
{
    FlatOram::Params params;
    params.capacityBlocks = 128;
    FlatOram a(params);
    Random rng(31);
    for (int i = 0; i < 300; ++i) {
        DataBlock d;
        rng.fillBytes(d.data(), d.size());
        a.write(rng.randUnder(params.capacityBlocks), d);
    }

    std::stringstream snap;
    a.serialize(snap);
    FlatOram b(params);
    ASSERT_TRUE(b.deserialize(snap));
    EXPECT_TRUE(b.checkInvariant());

    // Same state and same RNG stream: identical slot choices forward.
    DataBlock d{};
    for (int i = 0; i < 100; ++i) {
        uint64_t block = static_cast<uint64_t>(i * 13) % 128;
        a.write(block, d);
        b.write(block, d);
        ASSERT_EQ(a.lastWriteSlots(), b.lastWriteSlots());
        EXPECT_EQ(a.slotOf(block), b.slotOf(block));
    }

    std::stringstream full;
    a.serialize(full);
    std::string bytes = full.str();
    std::stringstream cut(bytes.substr(0, bytes.size() / 3));
    FlatOram c(params);
    EXPECT_FALSE(c.deserialize(cut));
}

TEST(FlatOramDeathTest, OverdrivingPastPhysicalCapacityFailStops)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    FlatOram::Params params;
    params.capacityBlocks = 4; // 8 physical slots
    FlatOram oram(params);
    DataBlock d{};
    EXPECT_DEATH(
        {
            for (uint64_t b = 0; b < 16; ++b)
                oram.write(b, d);
        },
        "physical capacity");
}

// =====================================================================
// WriteOnlyOram
// =====================================================================

TEST(WriteOnlyOram, ReadAfterWrite)
{
    WriteOnlyOram::Params params;
    params.capacityBlocks = 64;
    WriteOnlyOram oram(params);
    DataBlock d = patternBlock(0x22);
    oram.write(17, d);
    EXPECT_EQ(oram.read(17), d);
    EXPECT_TRUE(oram.inHolding(17));
}

TEST(WriteOnlyOram, NeverWrittenReadsDeterministicJunk)
{
    WriteOnlyOram::Params params;
    params.capacityBlocks = 64;
    WriteOnlyOram oram(params);
    EXPECT_EQ(oram.read(9), junkDataBlock(9));
    EXPECT_EQ(oram.lastReadSlots().size(), 1u);
}

TEST(WriteOnlyOram, PhysicalWriteTraceIsDeterministicRoundRobin)
{
    // The core security property, checked exactly (not
    // statistically): write number c always touches holding slot
    // N + (c mod N) then main slot (c mod N), whatever address the
    // program wrote.
    WriteOnlyOram::Params params;
    params.capacityBlocks = 32;
    WriteOnlyOram a(params), b(params);
    Random rng(41);
    DataBlock d{};
    for (uint64_t c = 0; c < 200; ++c) {
        const uint64_t n = params.capacityBlocks;
        std::vector<uint64_t> expected = {n + (c % n), c % n};
        a.write(rng.randUnder(n), d);
        b.write((c * 7) % n, d);
        ASSERT_EQ(a.lastWriteSlots(), expected) << "write " << c;
        ASSERT_EQ(b.lastWriteSlots(), expected) << "write " << c;
    }
}

TEST(WriteOnlyOram, MatchesReferenceMapAcrossHoldingWraparound)
{
    WriteOnlyOram::Params params;
    params.capacityBlocks = 32;
    WriteOnlyOram oram(params);
    Random rng(43);
    std::map<uint64_t, DataBlock> reference;

    // 1000 writes over a 32-slot holding area: the holding slots are
    // reused ~30 times, exercising the refresh-before-reuse safety
    // argument from every phase alignment.
    for (int op = 0; op < 2000; ++op) {
        uint64_t block = rng.randUnder(params.capacityBlocks);
        if (rng.chance(0.5)) {
            DataBlock d;
            rng.fillBytes(d.data(), d.size());
            oram.write(block, d);
            reference[block] = d;
        } else if (reference.count(block)) {
            ASSERT_EQ(oram.read(block), reference[block])
                << "op " << op;
        }
        if (op % 250 == 249) {
            ASSERT_TRUE(oram.checkInvariant()) << "op " << op;
        }
    }
    EXPECT_TRUE(oram.checkInvariant());
}

TEST(WriteOnlyOram, RefreshPropagatesHoldingCopiesToMain)
{
    WriteOnlyOram::Params params;
    params.capacityBlocks = 16;
    WriteOnlyOram oram(params);
    DataBlock d = patternBlock(0x33);
    oram.write(3, d);
    EXPECT_TRUE(oram.inHolding(3));
    // A full round of other writes round-robins the refresh over
    // every main block, including 3.
    DataBlock junk{};
    for (int i = 0; i < 16; ++i)
        oram.write(10, junk);
    EXPECT_FALSE(oram.inHolding(3));
    EXPECT_EQ(oram.read(3), d);
    // Freshest copy now served from main area (slot id < N).
    EXPECT_EQ(oram.lastReadSlots().front(), 3u);
}

TEST(WriteOnlyOram, CostsAreExactlyTwoXWriteAndStorage)
{
    WriteOnlyOram::Params params;
    params.capacityBlocks = 64;
    WriteOnlyOram oram(params);
    DataBlock d{};
    for (int i = 0; i < 150; ++i)
        oram.write(i % 64, d);
    EXPECT_EQ(oram.logicalWrites(), 150u);
    EXPECT_EQ(oram.physicalWrites(), 300u);
    EXPECT_EQ(oram.physicalBlocks(), 2 * oram.capacityBlocks());
}

TEST(WriteOnlyOram, SerializeRoundTripsAndReplaysIdentically)
{
    WriteOnlyOram::Params params;
    params.capacityBlocks = 48;
    WriteOnlyOram a(params);
    Random rng(47);
    for (int i = 0; i < 200; ++i) {
        DataBlock d;
        rng.fillBytes(d.data(), d.size());
        a.write(rng.randUnder(params.capacityBlocks), d);
    }

    std::stringstream snap;
    a.serialize(snap);
    WriteOnlyOram b(params);
    ASSERT_TRUE(b.deserialize(snap));
    EXPECT_TRUE(b.checkInvariant());
    EXPECT_EQ(a.logicalWrites(), b.logicalWrites());

    DataBlock d = patternBlock(0x44);
    for (int i = 0; i < 100; ++i) {
        uint64_t block = static_cast<uint64_t>(i * 5) % 48;
        a.write(block, d);
        b.write(block, d);
        ASSERT_EQ(a.lastWriteSlots(), b.lastWriteSlots());
    }
    for (uint64_t block = 0; block < 48; ++block)
        EXPECT_EQ(a.read(block), b.read(block)) << "block " << block;

    std::stringstream full;
    a.serialize(full);
    std::string bytes = full.str();
    std::stringstream cut(bytes.substr(0, bytes.size() / 2));
    WriteOnlyOram c(params);
    EXPECT_FALSE(c.deserialize(cut));
}

// =====================================================================
// Phased controllers over a zero-latency sink
// =====================================================================

TEST(FlatOramController, TransferCountsMatchTheModel)
{
    EventQueue eq;
    statistics::Group stats("test", nullptr);
    ImmediateSink sink;
    FlatOramController::Params params;
    params.oram.capacityBlocks = 256;
    FlatOramController ctl("flat", eq, &stats, params, sink);

    DataBlock d = patternBlock(0x55);
    MemPacket wr;
    wr.cmd = MemCmd::Write;
    wr.addr = 5 * blockBytes;
    wr.data = d;
    ctl.access(std::move(wr), [](MemPacket &&) {});
    eq.run();
    // A write is exactly one substrate write, no reads.
    EXPECT_EQ(sink.writes, 1u);
    EXPECT_EQ(sink.reads, 0u);

    DataBlock out{};
    MemPacket rd;
    rd.cmd = MemCmd::Read;
    rd.addr = 5 * blockBytes;
    ctl.access(std::move(rd),
               [&out](MemPacket &&resp) { out = resp.data; });
    eq.run();
    EXPECT_EQ(out, d);
    // A read is exactly one substrate read.
    EXPECT_EQ(sink.reads, 1u);
    EXPECT_EQ(ctl.blocksTransferred(), 2u);
}

TEST(WriteOnlyOramController, TransferCountsMatchTheModel)
{
    EventQueue eq;
    statistics::Group stats("test", nullptr);
    ImmediateSink sink;
    WriteOnlyOramController::Params params;
    params.oram.capacityBlocks = 256;
    WriteOnlyOramController ctl("wo", eq, &stats, params, sink);

    DataBlock d = patternBlock(0x66);
    MemPacket wr;
    wr.cmd = MemCmd::Write;
    wr.addr = 9 * blockBytes;
    wr.data = d;
    ctl.access(std::move(wr), [](MemPacket &&) {});
    eq.run();
    // A write is exactly two substrate writes (holding + refresh).
    EXPECT_EQ(sink.writes, 2u);
    EXPECT_EQ(sink.reads, 0u);

    DataBlock out{};
    MemPacket rd;
    rd.cmd = MemCmd::Read;
    rd.addr = 9 * blockBytes;
    ctl.access(std::move(rd),
               [&out](MemPacket &&resp) { out = resp.data; });
    eq.run();
    EXPECT_EQ(out, d);
    EXPECT_EQ(sink.reads, 1u);
    EXPECT_EQ(ctl.blocksTransferred(), 3u);
}

TEST(WriteOnlyOramController, AliasesAddressesIntoTheBlockSpace)
{
    EventQueue eq;
    statistics::Group stats("test", nullptr);
    ImmediateSink sink;
    WriteOnlyOramController::Params params;
    params.oram.capacityBlocks = 64;
    WriteOnlyOramController ctl("wo", eq, &stats, params, sink);

    DataBlock d = patternBlock(0x77);
    MemPacket wr;
    wr.cmd = MemCmd::Write;
    // Block id 64 + 3 aliases onto block 3.
    wr.addr = (64 + 3) * blockBytes;
    wr.data = d;
    ctl.access(std::move(wr), [](MemPacket &&) {});
    eq.run();
    EXPECT_EQ(ctl.oram().read(3), d);
}
