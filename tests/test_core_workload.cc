/**
 * @file
 * Workload generator and trace core tests.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "cpu/core.hh"
#include "cpu/trace_workload.hh"
#include "cpu/workload.hh"

using namespace obfusmem;

namespace {

constexpr uint64_t MB = 1024 * 1024;
constexpr uint64_t GB = 1024 * MB;

class StubMemory : public MemSink
{
  public:
    StubMemory(EventQueue &eq, Tick latency) : eq(eq), latency(latency)
    {}

    void
    access(MemPacket pkt, PacketCallback cb) override
    {
        eq.scheduleAfter(latency,
            [pkt = std::move(pkt), cb = std::move(cb)]() mutable {
                cb(std::move(pkt));
            });
    }

    EventQueue &eq;
    Tick latency;
};

} // namespace

TEST(BenchmarkProfile, FifteenBenchmarksOfTable1)
{
    const auto &profiles = BenchmarkProfile::spec2006();
    EXPECT_EQ(profiles.size(), 15u);
    for (const auto &p : profiles) {
        EXPECT_GT(p.paperIpc, 0.0);
        EXPECT_GT(p.paperMpki, 0.0);
        EXPECT_GT(p.paperGapNs, 0.0);
        EXPECT_GT(p.memRefsPerKI, 0.0);
        EXPECT_LE(p.streamFraction, 1.0);
        EXPECT_GT(p.baseCpi, 0.0);
    }
}

TEST(BenchmarkProfile, LookupByName)
{
    const auto &mcf = BenchmarkProfile::byName("mcf");
    EXPECT_NEAR(mcf.paperMpki, 24.82, 1e-9);
    EXPECT_NEAR(mcf.paperIpc, 0.17, 1e-9);
}

TEST(BenchmarkProfileDeathTest, UnknownNameFatal)
{
    EXPECT_EXIT(BenchmarkProfile::byName("nosuchbench"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(WorkloadGenerator, Deterministic)
{
    const auto &prof = BenchmarkProfile::byName("milc");
    WorkloadGenerator a(prof, 0, 1 * GB, 7);
    WorkloadGenerator b(prof, 0, 1 * GB, 7);
    for (int i = 0; i < 1000; ++i) {
        MemOp x = a.next(), y = b.next();
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.gapInstrs, y.gapInstrs);
        EXPECT_EQ(x.isStore, y.isStore);
        EXPECT_EQ(x.dependent, y.dependent);
    }
}

TEST(WorkloadGenerator, AddressesStayInRegion)
{
    const auto &prof = BenchmarkProfile::byName("soplex");
    uint64_t base = 2 * GB;
    WorkloadGenerator gen(prof, base, 1 * GB, 3);
    for (int i = 0; i < 10000; ++i) {
        MemOp op = gen.next();
        EXPECT_GE(op.addr, base);
        EXPECT_LT(op.addr, base + 1 * GB);
    }
}

TEST(WorkloadGenerator, StreamFractionApproximatesTarget)
{
    const auto &prof = BenchmarkProfile::byName("bwaves");
    WorkloadGenerator gen(prof, 0, 1 * GB, 5);
    int stream = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        stream += gen.next().stream;
    EXPECT_NEAR(stream / double(n), prof.streamFraction, 0.01);
}

TEST(WorkloadGenerator, StoreFractionApproximatesTarget)
{
    const auto &prof = BenchmarkProfile::byName("lbm");
    WorkloadGenerator gen(prof, 0, 1 * GB, 9);
    int stores = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        stores += gen.next().isStore;
    EXPECT_NEAR(stores / double(n), prof.storeFraction, 0.02);
}

TEST(WorkloadGenerator, GapMatchesRefsPerKiloInstr)
{
    const auto &prof = BenchmarkProfile::byName("milc");
    WorkloadGenerator gen(prof, 0, 1 * GB, 11);
    uint64_t instrs = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        instrs += gen.next().gapInstrs + 1; // +1 for the op itself
    double refs_per_ki = 1000.0 * n / instrs;
    EXPECT_NEAR(refs_per_ki, prof.memRefsPerKI,
                prof.memRefsPerKI * 0.05);
}

TEST(WorkloadGenerator, SequentialStreamWalksBlocks)
{
    BenchmarkProfile prof = BenchmarkProfile::byName("libquantum");
    prof.streamFraction = 1.0; // force all-stream
    prof.storeFraction = 0.0;
    prof.dependentFraction = 0.0;
    WorkloadGenerator gen(prof, 0, 1 * GB, 13);
    uint64_t prev = gen.next().addr;
    for (int i = 0; i < 100; ++i) {
        uint64_t cur = gen.next().addr;
        if (cur != prof.hotBytes) { // wrap point
            EXPECT_EQ(cur, prev + 64); }
        prev = cur;
    }
}

TEST(WorkloadGenerator, DependentOnlyOnStreamOps)
{
    const auto &prof = BenchmarkProfile::byName("mcf");
    WorkloadGenerator gen(prof, 0, 1 * GB, 17);
    for (int i = 0; i < 20000; ++i) {
        MemOp op = gen.next();
        if (op.dependent) {
            EXPECT_TRUE(op.stream); }
    }
}

namespace {

/** Run one core on a stub memory and return its finish tick. */
Tick
runCore(const std::string &bench, Tick mem_latency,
        uint64_t instrs = 20000, double dep_override = -1)
{
    EventQueue eq;
    statistics::Group stats("test", nullptr);
    StubMemory mem(eq, mem_latency);
    CacheHierarchy caches("caches", eq, &stats, HierarchyParams{},
                          mem);
    BenchmarkProfile prof = BenchmarkProfile::byName(bench);
    if (dep_override >= 0)
        prof.dependentFraction = dep_override;
    WorkloadGenerator gen(prof, 0, 1ull << 30, 23);
    // Warm the hot working set, as the System does.
    for (uint64_t off = 0; off < prof.hotBytes; off += 64)
        caches.preload(0, off, DataBlock{});
    Tick finish = 0;
    TraceCore core("core", eq, &stats, TraceCore::Params{},
                   std::move(gen), caches, 0, instrs,
                   [&finish](Tick t) { finish = t; });
    core.start();
    eq.run();
    EXPECT_TRUE(core.finished());
    EXPECT_EQ(core.instructionsRetired(), instrs);
    return finish;
}

} // namespace

TEST(TraceCore, RunsToCompletion)
{
    EXPECT_GT(runCore("milc", 100 * tickPerNs), 0u);
}

TEST(TraceCore, SlowerMemorySlowsExecution)
{
    Tick fast = runCore("milc", 50 * tickPerNs);
    Tick slow = runCore("milc", 500 * tickPerNs);
    EXPECT_GT(slow, fast);
}

TEST(TraceCore, OramLikeLatencyHurtsByOrderOfMagnitude)
{
    Tick fast = runCore("soplex", 100 * tickPerNs);
    Tick oram = runCore("soplex", 2500 * tickPerNs);
    EXPECT_GT(oram, 3 * fast);
}

TEST(TraceCore, DependenceSerializesMisses)
{
    Tick parallel = runCore("mcf", 300 * tickPerNs, 20000, 0.0);
    Tick serial = runCore("mcf", 300 * tickPerNs, 20000, 1.0);
    EXPECT_GT(serial, parallel);
}

TEST(TraceCore, ComputeBoundBarelyNoticesMemory)
{
    Tick fast = runCore("hmmer", 50 * tickPerNs);
    Tick slow = runCore("hmmer", 1000 * tickPerNs);
    EXPECT_LT(static_cast<double>(slow) / fast, 1.2);
}

TEST(TraceCore, IpcReportedAfterFinish)
{
    EventQueue eq;
    statistics::Group stats("test", nullptr);
    StubMemory mem(eq, 100 * tickPerNs);
    CacheHierarchy caches("caches", eq, &stats, HierarchyParams{},
                          mem);
    WorkloadGenerator gen(BenchmarkProfile::byName("sjeng"), 0,
                          1ull << 30, 29);
    TraceCore core("core", eq, &stats, TraceCore::Params{},
                   std::move(gen), caches, 0, 10000, nullptr);
    EXPECT_EQ(core.ipc(), 0.0);
    core.start();
    eq.run();
    EXPECT_GT(core.ipc(), 0.0);
    EXPECT_LT(core.ipc(), 8.0);
}

TEST(TraceWorkload, ParseAndSerializeRoundTrip)
{
    std::string text =
        "# a comment\n"
        "5 R 1000\n"
        "0 W 2040 S\n"
        "12 R dead00 D S\n"
        "\n"
        "3 W 40 # trailing comment\n";
    std::istringstream in(text);
    std::vector<MemOp> ops = parseTrace(in);
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_EQ(ops[0].gapInstrs, 5u);
    EXPECT_FALSE(ops[0].isStore);
    EXPECT_EQ(ops[0].addr, 0x1000u);
    EXPECT_TRUE(ops[1].isStore);
    EXPECT_TRUE(ops[1].stream);
    EXPECT_TRUE(ops[2].dependent);
    EXPECT_EQ(ops[2].addr, 0xdead00u);
    EXPECT_EQ(ops[3].gapInstrs, 3u);

    std::ostringstream out;
    writeTrace(out, ops);
    std::istringstream back(out.str());
    std::vector<MemOp> again = parseTrace(back);
    ASSERT_EQ(again.size(), ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
        EXPECT_EQ(again[i].addr, ops[i].addr);
        EXPECT_EQ(again[i].isStore, ops[i].isStore);
        EXPECT_EQ(again[i].dependent, ops[i].dependent);
        EXPECT_EQ(again[i].gapInstrs, ops[i].gapInstrs);
    }
}

TEST(TraceWorkload, ReplayerLoops)
{
    std::vector<MemOp> ops(3);
    ops[0].addr = 0x40;
    ops[1].addr = 0x80;
    ops[2].addr = 0xc0;
    WorkloadGenerator gen = makeTraceReplayer(ops, 0.5);
    EXPECT_EQ(gen.profile().name, "trace-replay");
    EXPECT_EQ(gen.profile().baseCpi, 0.5);
    for (int round = 0; round < 3; ++round) {
        EXPECT_EQ(gen.next().addr, 0x40u);
        EXPECT_EQ(gen.next().addr, 0x80u);
        EXPECT_EQ(gen.next().addr, 0xc0u);
    }
}

TEST(TraceWorkload, CoreRunsOnReplayedTrace)
{
    EventQueue eq;
    statistics::Group stats("test", nullptr);
    StubMemory mem(eq, 100 * tickPerNs);
    CacheHierarchy caches("caches", eq, &stats, HierarchyParams{},
                          mem);
    std::vector<MemOp> ops;
    for (int i = 0; i < 50; ++i) {
        MemOp op{};
        op.gapInstrs = 4;
        op.isStore = i % 3 == 0;
        op.addr = 0x100000 + i * 64ull;
        ops.push_back(op);
    }
    Tick finish = 0;
    TraceCore core("core", eq, &stats, TraceCore::Params{},
                   makeTraceReplayer(ops, 1.0), caches, 0, 2000,
                   [&finish](Tick t) { finish = t; });
    core.start();
    eq.run();
    EXPECT_TRUE(core.finished());
    EXPECT_EQ(core.instructionsRetired(), 2000u);
    EXPECT_GT(finish, 0u);
}

TEST(TraceWorkloadDeathTest, RejectsMalformedLines)
{
    std::istringstream bad("5 X 1000\n");
    EXPECT_EXIT(parseTrace(bad), ::testing::ExitedWithCode(1),
                "command must be R or W");
}
