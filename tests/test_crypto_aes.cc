/**
 * @file
 * AES-128 and AES-CTR tests, including the FIPS-197 known-answer
 * vectors and counter-mode properties ObfusMem depends on.
 */

#include <gtest/gtest.h>

#include <set>

#include "crypto/aes128.hh"
#include "crypto/bytes.hh"
#include "crypto/ctr_mode.hh"
#include "util/random.hh"

using namespace obfusmem;
using namespace obfusmem::crypto;

namespace {

Block128
block(const std::string &hex)
{
    auto v = fromHex(hex);
    Block128 b{};
    std::copy(v.begin(), v.end(), b.begin());
    return b;
}

} // namespace

TEST(Aes128, Fips197AppendixB)
{
    // FIPS-197 Appendix B example.
    Aes128 aes(block("2b7e151628aed2a6abf7158809cf4f3c"));
    Block128 ct = aes.encryptBlock(
        block("3243f6a8885a308d313198a2e0370734"));
    EXPECT_EQ(toHex(ct), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, Fips197AppendixC1)
{
    // FIPS-197 Appendix C.1 (AES-128).
    Aes128 aes(block("000102030405060708090a0b0c0d0e0f"));
    Block128 ct = aes.encryptBlock(
        block("00112233445566778899aabbccddeeff"));
    EXPECT_EQ(toHex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, DecryptInvertsEncrypt)
{
    Random rng(1);
    Aes128::Key key;
    rng.fillBytes(key.data(), key.size());
    Aes128 aes(key);
    for (int i = 0; i < 50; ++i) {
        Block128 pt;
        rng.fillBytes(pt.data(), pt.size());
        EXPECT_EQ(aes.decryptBlock(aes.encryptBlock(pt)), pt);
    }
}

TEST(Aes128, DifferentKeysDifferentCiphertexts)
{
    Block128 pt = block("00000000000000000000000000000000");
    Aes128 a(block("00000000000000000000000000000001"));
    Aes128 b(block("00000000000000000000000000000002"));
    EXPECT_NE(a.encryptBlock(pt), b.encryptBlock(pt));
}

TEST(Aes128, SingleBitKeyChangeAvalanche)
{
    Block128 pt = block("00112233445566778899aabbccddeeff");
    Aes128 a(block("000102030405060708090a0b0c0d0e0f"));
    Aes128 b(block("010102030405060708090a0b0c0d0e0f"));
    Block128 ca = a.encryptBlock(pt);
    Block128 cb = b.encryptBlock(pt);
    int diff_bits = 0;
    for (size_t i = 0; i < ca.size(); ++i)
        diff_bits = diff_bits + __builtin_popcount(ca[i] ^ cb[i]);
    // Avalanche: roughly half of the 128 bits flip.
    EXPECT_GT(diff_bits, 40);
    EXPECT_LT(diff_bits, 90);
}

TEST(Aes128, RekeyingWorks)
{
    Block128 pt = block("00112233445566778899aabbccddeeff");
    Aes128 aes(block("000102030405060708090a0b0c0d0e0f"));
    Block128 first = aes.encryptBlock(pt);
    aes.setKey(block("ffeeddccbbaa99887766554433221100"));
    Block128 second = aes.encryptBlock(pt);
    EXPECT_NE(first, second);
    aes.setKey(block("000102030405060708090a0b0c0d0e0f"));
    EXPECT_EQ(aes.encryptBlock(pt), first);
}

TEST(Aes128, Fips197BothImplementations)
{
    // The known-answer vectors must hold for the T-table fast path
    // AND the byte-oriented reference, independent of the default.
    for (AesImpl impl : {AesImpl::Ttable, AesImpl::Reference}) {
        Aes128 aes(block("2b7e151628aed2a6abf7158809cf4f3c"));
        aes.setImpl(impl);
        EXPECT_EQ(toHex(aes.encryptBlock(
                      block("3243f6a8885a308d313198a2e0370734"))),
                  "3925841d02dc09fbdc118597196a0b32");
        aes.setKey(block("000102030405060708090a0b0c0d0e0f"));
        EXPECT_EQ(toHex(aes.encryptBlock(
                      block("00112233445566778899aabbccddeeff"))),
                  "69c4e0d86a7b0430d8cdb78070b4c55a");
    }
}

TEST(Aes128, TtableMatchesReferenceRandomized)
{
    // Pin the fused-table fast path to the structural reference over
    // many random keys and plaintexts.
    Random rng(0xc0ffee);
    for (int k = 0; k < 20; ++k) {
        Aes128::Key key;
        rng.fillBytes(key.data(), key.size());
        Aes128 fast(key), ref(key);
        fast.setImpl(AesImpl::Ttable);
        ref.setImpl(AesImpl::Reference);
        for (int i = 0; i < 50; ++i) {
            Block128 pt;
            rng.fillBytes(pt.data(), pt.size());
            EXPECT_EQ(fast.encryptBlock(pt), ref.encryptBlock(pt));
        }
    }
}

TEST(Aes128, EncryptBlocksMatchesBlockwise)
{
    Random rng(7);
    Aes128::Key key;
    rng.fillBytes(key.data(), key.size());
    Aes128 aes(key);

    std::array<Block128, 11> in, out;
    for (auto &b : in)
        rng.fillBytes(b.data(), b.size());
    aes.encryptBlocks(in.data(), out.data(), in.size());
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(out[i], aes.encryptBlock(in[i]));

    // In-place (aliased) batching must give the same answer.
    std::array<Block128, 11> aliased = in;
    aes.encryptBlocks(aliased.data(), aliased.data(), aliased.size());
    EXPECT_EQ(aliased, out);
}

TEST(Aes128, Fips197AesniKnownAnswers)
{
    if (!Aes128::aesniAvailable())
        GTEST_SKIP() << "AES-NI unavailable on this host/build";
    Aes128 aes(block("2b7e151628aed2a6abf7158809cf4f3c"));
    aes.setImpl(AesImpl::Aesni);
    EXPECT_EQ(toHex(aes.encryptBlock(
                  block("3243f6a8885a308d313198a2e0370734"))),
              "3925841d02dc09fbdc118597196a0b32");
    aes.setKey(block("000102030405060708090a0b0c0d0e0f"));
    EXPECT_EQ(toHex(aes.encryptBlock(
                  block("00112233445566778899aabbccddeeff"))),
              "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, ThreeWayImplCrossCheckRandomized)
{
    // All implementations must agree block-for-block over random keys
    // and plaintexts: aesni and ttable are both pinned to the
    // byte-oriented structural reference.
    if (!Aes128::aesniAvailable())
        GTEST_SKIP() << "AES-NI unavailable on this host/build";
    Random rng(0xae51);
    for (int k = 0; k < 20; ++k) {
        Aes128::Key key;
        rng.fillBytes(key.data(), key.size());
        Aes128 hw(key), fast(key), ref(key);
        hw.setImpl(AesImpl::Aesni);
        fast.setImpl(AesImpl::Ttable);
        ref.setImpl(AesImpl::Reference);
        for (int i = 0; i < 50; ++i) {
            Block128 pt;
            rng.fillBytes(pt.data(), pt.size());
            Block128 want = ref.encryptBlock(pt);
            EXPECT_EQ(hw.encryptBlock(pt), want);
            EXPECT_EQ(fast.encryptBlock(pt), want);
        }
    }
}

TEST(Aes128, AesniEncryptBlocksAllTailShapes)
{
    // The AES-NI batch path takes 8-wide, 4-wide and single-block
    // legs; every size up to 20 exercises each combination, both
    // out-of-place and aliased in place.
    if (!Aes128::aesniAvailable())
        GTEST_SKIP() << "AES-NI unavailable on this host/build";
    Random rng(0xb10c);
    Aes128::Key key;
    rng.fillBytes(key.data(), key.size());
    Aes128 hw(key), ref(key);
    hw.setImpl(AesImpl::Aesni);
    ref.setImpl(AesImpl::Reference);

    for (size_t n = 1; n <= 20; ++n) {
        std::vector<Block128> in(n), out(n);
        for (auto &b : in)
            rng.fillBytes(b.data(), b.size());
        hw.encryptBlocks(in.data(), out.data(), n);
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(out[i], ref.encryptBlock(in[i])) << "n=" << n
                                                       << " i=" << i;

        std::vector<Block128> aliased = in;
        hw.encryptBlocks(aliased.data(), aliased.data(), n);
        EXPECT_EQ(aliased, out) << "n=" << n;
    }
}

TEST(Aes128, AesniGenPadsMatchesTtable)
{
    // The counter-mode pads the prefetch pipeline serves must be
    // independent of the AES implementation behind them.
    if (!Aes128::aesniAvailable())
        GTEST_SKIP() << "AES-NI unavailable on this host/build";
    AesCtr ctr(block("2b7e151628aed2a6abf7158809cf4f3c"), 0xabcd);
    Aes128 ref(block("2b7e151628aed2a6abf7158809cf4f3c"));
    ref.setImpl(AesImpl::Reference);
    for (uint64_t base : {0ull, 6ull, 48ull, 999999ull}) {
        std::vector<Block128> batch(48);
        ctr.genPads(base, batch.data(), batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
            Block128 iv{};
            storeLe64(iv.data(), 0xabcd);
            storeLe64(iv.data() + 8, base + i);
            EXPECT_EQ(batch[i], ref.encryptBlock(iv))
                << "base=" << base << " i=" << i;
        }
    }
}

TEST(Aes128, DefaultImplFallsBackGracefully)
{
    // setImpl(aesni) on a host without AES-NI must fall back to the
    // T-table path, never crash; with AES-NI the choice sticks.
    Aes128 aes(block("000102030405060708090a0b0c0d0e0f"));
    aes.setImpl(AesImpl::Aesni);
    EXPECT_EQ(toHex(aes.encryptBlock(
                  block("00112233445566778899aabbccddeeff"))),
              "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, ImplNamesStable)
{
    EXPECT_STREQ(aesImplName(AesImpl::Ttable), "ttable");
    EXPECT_STREQ(aesImplName(AesImpl::Reference), "reference");
    EXPECT_STREQ(aesImplName(AesImpl::Aesni), "aesni");
}

TEST(AesCtr, PadMatchesManualConstruction)
{
    Aes128::Key key = block("2b7e151628aed2a6abf7158809cf4f3c");
    uint64_t nonce = 0x1122334455667788ULL;
    AesCtr ctr(key, nonce);

    Block128 iv{};
    storeLe64(iv.data(), nonce);
    storeLe64(iv.data() + 8, 42);
    Aes128 aes(key);
    EXPECT_EQ(ctr.pad(42), aes.encryptBlock(iv));
}

TEST(AesCtr, PadsAreUniquePerCounter)
{
    AesCtr ctr(block("000102030405060708090a0b0c0d0e0f"), 7);
    std::set<std::string> pads;
    for (uint64_t i = 0; i < 500; ++i)
        pads.insert(toHex(ctr.pad(i)));
    EXPECT_EQ(pads.size(), 500u);
}

TEST(AesCtr, GenPadsMatchesSinglePads)
{
    // The batched group-pad API must be equivalent to generating the
    // pads one counter at a time (this is the equivalence the whole
    // wire protocol's pad caching rests on).
    AesCtr ctr(block("2b7e151628aed2a6abf7158809cf4f3c"), 0xabcd);
    for (uint64_t base : {0ull, 1ull, 6ull, 12345ull}) {
        for (size_t n : {1u, 2u, 5u, 6u, 8u}) {
            std::vector<Block128> batch(n);
            ctr.genPads(base, batch.data(), n);
            for (size_t i = 0; i < n; ++i)
                EXPECT_EQ(batch[i], ctr.pad(base + i))
                    << "base=" << base << " i=" << i;
        }
    }
}

TEST(AesCtr, DifferentNoncesDifferentStreams)
{
    Aes128::Key key = block("000102030405060708090a0b0c0d0e0f");
    AesCtr a(key, 0), b(key, 1);
    EXPECT_NE(a.pad(0), b.pad(0));
}

TEST(AesCtr, KeystreamRoundTrip)
{
    AesCtr ctr(block("2b7e151628aed2a6abf7158809cf4f3c"), 99);
    Random rng(5);
    uint8_t buf[200], orig[200];
    rng.fillBytes(buf, sizeof(buf));
    memcpy(orig, buf, sizeof(buf));

    uint64_t used = ctr.applyKeystream(buf, sizeof(buf), 1000);
    EXPECT_EQ(used, (sizeof(buf) + 15) / 16);
    EXPECT_NE(memcmp(buf, orig, sizeof(buf)), 0);

    ctr.applyKeystream(buf, sizeof(buf), 1000);
    EXPECT_EQ(memcmp(buf, orig, sizeof(buf)), 0);
}

TEST(AesCtr, KeystreamPartialBlock)
{
    AesCtr ctr(block("2b7e151628aed2a6abf7158809cf4f3c"), 3);
    uint8_t buf[5] = {1, 2, 3, 4, 5};
    uint64_t used = ctr.applyKeystream(buf, sizeof(buf), 0);
    EXPECT_EQ(used, 1u);
}

TEST(MemoryEncryptionIv, DistinctFieldsDistinctIvs)
{
    MemoryEncryptionIv a{1, 0, 0, 0};
    MemoryEncryptionIv b{2, 0, 0, 0};
    MemoryEncryptionIv c{1, 1, 0, 0};
    MemoryEncryptionIv d{1, 0, 1, 0};
    MemoryEncryptionIv e{1, 0, 0, 1};
    std::set<std::string> ivs{toHex(a.pack()), toHex(b.pack()),
                              toHex(c.pack()), toHex(d.pack()),
                              toHex(e.pack())};
    EXPECT_EQ(ivs.size(), 5u);
}

TEST(AesEngineParams, MatchesPaperSynthesis)
{
    // Paper Sec. 4: 24-cycle latency at 4 ns, one pad per cycle,
    // 15.1 mW, 0.204 mm^2.
    EXPECT_EQ(AesEngineParams::pipelineDepth, 24u);
    EXPECT_EQ(AesEngineParams::cycleTimePs, 4000u);
    EXPECT_EQ(AesEngineParams::padsPerCycle, 1u);
    EXPECT_NEAR(AesEngineParams::powerMw, 15.1, 1e-9);
    EXPECT_NEAR(AesEngineParams::areaMm2, 0.204, 1e-9);
}

namespace {

bool
implAvailable(AesImpl impl)
{
    switch (impl) {
      case AesImpl::Aesni:
      case AesImpl::Aesni4:
        return Aes128::aesniAvailable();
      case AesImpl::Vaes:
        return Aes128::vaesAvailable();
      default:
        return true;
    }
}

/** The lanes the SoA pipeline dispatches across, widest last. */
constexpr AesImpl kAllImpls[] = {
    AesImpl::Ttable, AesImpl::Reference, AesImpl::Aesni,
    AesImpl::Aesni4, AesImpl::Vaes,
};

} // namespace

TEST(Aes128, Fips197EveryImplementation)
{
    // The FIPS-197 Appendix B vector must come out of every lane the
    // dispatch can pick, not just the scalar paths.
    for (AesImpl impl : kAllImpls) {
        if (!implAvailable(impl))
            continue;
        Aes128 aes(block("2b7e151628aed2a6abf7158809cf4f3c"));
        aes.setImpl(impl);
        EXPECT_EQ(toHex(aes.encryptBlock(
                      block("3243f6a8885a308d313198a2e0370734"))),
                  "3925841d02dc09fbdc118597196a0b32")
            << aesImplName(impl);
    }
}

TEST(Aes128, EncryptBlocksCrossImplRandomized)
{
    // Randomized equivalence of the batched entry point across every
    // available implementation, over sizes that cross the 4-wide and
    // 16-wide grouping boundaries, out-of-place and aliased in place.
    Random rng(0xba7c4);
    Aes128 ref(block("000102030405060708090a0b0c0d0e0f"));
    ref.setImpl(AesImpl::Reference);
    for (size_t n : {1u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 17u, 48u}) {
        std::vector<Block128> in(n), expect(n);
        for (auto &b : in)
            rng.fillBytes(b.data(), b.size());
        ref.encryptBlocks(in.data(), expect.data(), n);
        for (AesImpl impl : kAllImpls) {
            if (!implAvailable(impl))
                continue;
            Aes128 aes(block("000102030405060708090a0b0c0d0e0f"));
            aes.setImpl(impl);
            std::vector<Block128> out(n);
            aes.encryptBlocks(in.data(), out.data(), n);
            EXPECT_EQ(out, expect)
                << aesImplName(impl) << " n=" << n;
            std::vector<Block128> aliased = in;
            aes.encryptBlocks(aliased.data(), aliased.data(), n);
            EXPECT_EQ(aliased, expect)
                << aesImplName(impl) << " aliased n=" << n;
        }
    }
}

TEST(AesCtr, GenPadsCrossImplEquivalence)
{
    // genPads builds IVs in the output buffer and encrypts them in
    // place (aliased), so every lane must agree on the aliasing
    // contract as well as the ciphertexts. Includes the request-group
    // stride (6) and the bench's per-flush arena size (192).
    AesCtr ref(block("2b7e151628aed2a6abf7158809cf4f3c"), 0xabcd);
    ref.setImpl(AesImpl::Reference);
    for (AesImpl impl : kAllImpls) {
        if (!implAvailable(impl))
            continue;
        AesCtr ctr(block("2b7e151628aed2a6abf7158809cf4f3c"), 0xabcd);
        ctr.setImpl(impl);
        for (size_t n : {1u, 5u, 6u, 17u, 192u}) {
            std::vector<Block128> expect(n), got(n);
            ref.genPads(7777, expect.data(), n);
            ctr.genPads(7777, got.data(), n);
            EXPECT_EQ(got, expect)
                << aesImplName(impl) << " n=" << n;
        }
    }
}

TEST(Aes128, WideImplNamesStable)
{
    EXPECT_STREQ(aesImplName(AesImpl::Aesni4), "aesni4");
    EXPECT_STREQ(aesImplName(AesImpl::Vaes), "vaes");
}
