/**
 * @file
 * Inter-channel obfuscation tests (paper Sec. 3.4): the UNOPT and OPT
 * dummy-injection schemes versus no cross-channel protection.
 */

#include <gtest/gtest.h>

#include "system/system.hh"

using namespace obfusmem;

namespace {

SystemConfig
channelConfig(ChannelScheme scheme, unsigned channels)
{
    SystemConfig cfg;
    cfg.mode = ProtectionMode::ObfusMemAuth;
    cfg.benchmark = "milc";
    cfg.instrPerCore = 20000;
    cfg.cores = 2;
    cfg.channels = channels;
    cfg.obfusmem.channelScheme = scheme;
    return cfg;
}

} // namespace

TEST(Channels, FunctionalAcrossChannels)
{
    SystemConfig cfg = channelConfig(ChannelScheme::Opt, 4);
    System sys(cfg);
    // Blocks landing on all four channels (1 KB interleave).
    for (int i = 0; i < 8; ++i) {
        DataBlock data;
        data.fill(static_cast<uint8_t>(0x80 + i));
        sys.timedStore(0, i * 1024ull, data, [](Tick) {});
    }
    sys.eventQueue().run();
    sys.flushAndDrain();
    for (int i = 0; i < 8; ++i) {
        DataBlock expect;
        expect.fill(static_cast<uint8_t>(0x80 + i));
        EXPECT_EQ(sys.functionalRead(i * 1024ull), expect) << i;
    }
}

TEST(Channels, NoSchemeLeaksSoloChannelActivity)
{
    System sys(channelConfig(ChannelScheme::None, 4));
    sys.run();
    // With no cross-channel dummies, many time windows show traffic
    // on exactly one channel: the spatial pattern leaks through the
    // per-channel pins.
    EXPECT_GT(sys.observer()->soloBucketFraction(), 0.03);
    EXPECT_EQ(sys.procSide()->dummyGroupsInjected(), 0u);
}

TEST(Channels, OptHidesSoloChannelActivity)
{
    System none_sys(channelConfig(ChannelScheme::None, 4));
    none_sys.run();
    System opt_sys(channelConfig(ChannelScheme::Opt, 4));
    opt_sys.run();
    EXPECT_LT(opt_sys.observer()->soloBucketFraction(),
              none_sys.observer()->soloBucketFraction() / 2);
    EXPECT_GT(opt_sys.procSide()->dummyGroupsInjected(), 0u);
}

TEST(Channels, UnoptInjectsAtLeastAsManyDummiesAsOpt)
{
    System opt_sys(channelConfig(ChannelScheme::Opt, 4));
    opt_sys.run();
    System unopt_sys(channelConfig(ChannelScheme::Unopt, 4));
    unopt_sys.run();
    EXPECT_GE(unopt_sys.procSide()->dummyGroupsInjected(),
              opt_sys.procSide()->dummyGroupsInjected());
}

TEST(Channels, UnoptIsSlowerOrEqualToOpt)
{
    System opt_sys(channelConfig(ChannelScheme::Opt, 8));
    auto opt = opt_sys.run();
    System unopt_sys(channelConfig(ChannelScheme::Unopt, 8));
    auto unopt = unopt_sys.run();
    // Observation 6: OPT limits the overhead as channels scale.
    EXPECT_GE(unopt.execTicks, opt.execTicks);
}

TEST(Channels, TrafficRoughlyBalancedUnderOpt)
{
    System sys(channelConfig(ChannelScheme::Opt, 4));
    sys.run();
    const auto &counts = sys.observer()->channelRequests();
    uint64_t total = 0, min_count = UINT64_MAX, max_count = 0;
    for (uint64_t c : counts) {
        total += c;
        min_count = std::min(min_count, c);
        max_count = std::max(max_count, c);
    }
    ASSERT_GT(total, 0u);
    // All channels see comparable request counts.
    EXPECT_GT(min_count, max_count / 4);
}

TEST(Channels, SingleChannelNeedsNoInjection)
{
    System sys(channelConfig(ChannelScheme::Opt, 1));
    sys.run();
    EXPECT_EQ(sys.procSide()->dummyGroupsInjected(), 0u);
}

class ChannelCountSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ChannelCountSweep, MoreChannelsDoNotHurtMuch)
{
    // Adding memory channels adds bandwidth; the channel-fill
    // dummies cost a little, but must stay within the modest
    // overhead band of the paper's Fig. 5.
    System narrow(channelConfig(ChannelScheme::Opt, 1));
    auto one = narrow.run();
    System wide(channelConfig(ChannelScheme::Opt, GetParam()));
    auto many = wide.run();
    EXPECT_LE(many.execTicks, one.execTicks * 23 / 20);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChannelCountSweep,
                         ::testing::Values(2u, 4u, 8u));

TEST(Channels, CounterSyncHoldsOnEveryChannel)
{
    System sys(channelConfig(ChannelScheme::Unopt, 4));
    sys.run();
    for (auto &side : sys.memSides()) {
        EXPECT_EQ(side->desyncEvents(), 0u);
        EXPECT_EQ(side->tamperDetections(), 0u);
    }
}
