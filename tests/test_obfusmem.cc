/**
 * @file
 * ObfusMem end-to-end tests: functional correctness through the
 * obfuscated channel, the security invariants an attacker-observer
 * can check, dummy-request handling, counter synchronization, and
 * tamper detection.
 */

#include <gtest/gtest.h>

#include "system/system.hh"

using namespace obfusmem;

namespace {

SystemConfig
smallConfig(ProtectionMode mode)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.benchmark = "milc";
    cfg.instrPerCore = 20000;
    cfg.cores = 2;
    return cfg;
}

DataBlock
patternBlock(uint8_t seed)
{
    DataBlock b;
    for (size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<uint8_t>(seed + i * 13);
    return b;
}

} // namespace

TEST(ObfusMem, StoreFlushReadRoundTrip)
{
    System sys(smallConfig(ProtectionMode::ObfusMemAuth));
    DataBlock data = patternBlock(0x10);
    bool stored = false;
    sys.timedStore(0, 0x2000, data, [&](Tick) { stored = true; });
    sys.eventQueue().run();
    sys.flushAndDrain();
    EXPECT_TRUE(stored);
    EXPECT_EQ(sys.functionalRead(0x2000), data);
}

TEST(ObfusMem, ManyBlocksSurviveFullPath)
{
    System sys(smallConfig(ProtectionMode::ObfusMemAuth));
    for (uint8_t i = 0; i < 32; ++i) {
        sys.timedStore(i % 2, 0x10000 + i * 64ull, patternBlock(i),
                       [](Tick) {});
    }
    sys.eventQueue().run();
    sys.flushAndDrain();
    for (uint8_t i = 0; i < 32; ++i)
        EXPECT_EQ(sys.functionalRead(0x10000 + i * 64ull),
                  patternBlock(i))
            << unsigned(i);
}

TEST(ObfusMem, MemoryHoldsDoublyUnreadableCiphertext)
{
    System sys(smallConfig(ProtectionMode::ObfusMemAuth));
    DataBlock data = patternBlock(0x20);
    sys.timedStore(0, 0x3000, data, [](Tick) {});
    sys.eventQueue().run();
    sys.flushAndDrain();
    EXPECT_NE(sys.backingStore().read(0x3000), data);
}

TEST(ObfusMem, TimedLoadReturnsAfterRealisticLatency)
{
    System sys(smallConfig(ProtectionMode::ObfusMemAuth));
    Tick done = 0;
    sys.timedLoad(0, 0x40000000, [&](Tick t) { done = t; });
    sys.eventQueue().run();
    EXPECT_GT(done, 50 * tickPerNs);
    EXPECT_LT(done, 2000 * tickPerNs);
}

TEST(ObfusMem, EveryAccessLooksLikeReadThenWrite)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    System sys(cfg);
    sys.run();

    BusObserver *obs = sys.observer();
    ASSERT_NE(obs, nullptr);
    ASSERT_GT(obs->requestMessages(), 100u);
    // The pairing invariant: apparent reads == apparent writes.
    EXPECT_EQ(obs->apparentReads(), obs->apparentWrites());
    EXPECT_LT(obs->typeImbalance(), 1e-9);
}

TEST(ObfusMem, UnprotectedBusLeaksRequestTypes)
{
    System sys(smallConfig(ProtectionMode::Unprotected));
    sys.run();
    BusObserver *obs = sys.observer();
    // Reads outnumber writes on a real memory bus.
    EXPECT_GT(obs->typeImbalance(), 0.1);
}

TEST(ObfusMem, WireAddressesNeverRepeat)
{
    System sys(smallConfig(ProtectionMode::ObfusMemAuth));
    sys.run();
    BusObserver *obs = sys.observer();
    ASSERT_GT(obs->requestMessages(), 100u);
    // Counter-mode header encryption: temporal reuse is invisible.
    EXPECT_LT(obs->addrReuseFraction(), 0.01);
    EXPECT_LE(obs->hottestAddrCount(), 2u);
}

namespace {

/**
 * Drive a temporally-reusing pattern onto the bus: each block is
 * fetched (store miss -> RFO read) and later written back, so the
 * same plaintext address crosses the wires twice.
 */
void
driveReusePattern(System &sys)
{
    for (int i = 0; i < 64; ++i) {
        sys.timedStore(0, 0x20000000 + i * 64ull, patternBlock(i),
                       [](Tick) {});
    }
    sys.eventQueue().run();
    sys.flushAndDrain();
}

} // namespace

TEST(ObfusMem, UnprotectedBusLeaksTemporalReuse)
{
    System sys(smallConfig(ProtectionMode::Unprotected));
    driveReusePattern(sys);
    // Fetch + writeback of a block show the same address twice: an
    // observer can link them (and flushes of the warmed cache repeat
    // the effect at scale).
    EXPECT_GE(sys.observer()->hottestAddrCount(), 2u);
}

TEST(ObfusMem, EncryptionOnlyStillLeaksAccessPattern)
{
    // The paper's core motivation: memory encryption alone does not
    // hide the address stream.
    System sys(smallConfig(ProtectionMode::EncryptionOnly));
    driveReusePattern(sys);
    EXPECT_GE(sys.observer()->hottestAddrCount(), 2u);
}

TEST(ObfusMem, SamePatternInvisibleUnderObfusMem)
{
    System sys(smallConfig(ProtectionMode::ObfusMemAuth));
    driveReusePattern(sys);
    // Counter-mode header encryption: no wire address repeats
    // (beyond negligible 64-bit collisions).
    EXPECT_LE(sys.observer()->hottestAddrCount(), 1u);
    EXPECT_LT(sys.observer()->addrReuseFraction(), 1e-6);
}

TEST(ObfusMem, DummiesDroppedAtMemory)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    System sys(cfg);
    sys.run();

    auto &mem_side = sys.memSides()[0];
    auto &ps = *sys.procSide();
    // Every real read pairs with a write: a real buffered write when
    // one substitutes, a droppable dummy otherwise; every real write
    // is preceded by a dummy read. Fixed dummies never touch PCM.
    EXPECT_EQ(mem_side->stats().scalarValue("dummyWritesDropped"),
              ps.stats().scalarValue("realReads")
                  - ps.stats().scalarValue("pairSubstitutions"));
    EXPECT_EQ(mem_side->stats().scalarValue("dummyReadsAnswered"),
              ps.stats().scalarValue("realWrites")
                  + ps.stats().scalarValue("channelFillGroups"));
    EXPECT_EQ(mem_side->stats().scalarValue("dummyPcmAccesses"), 0.0);
}

TEST(ObfusMem, NoWriteAmplification)
{
    // Zero extra PCM writes versus the unprotected system running
    // the same workload (Table 4: write amplification "None").
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    System protected_sys(cfg);
    auto protected_result = protected_sys.run();

    cfg.mode = ProtectionMode::Unprotected;
    System base_sys(cfg);
    auto base_result = base_sys.run();

    // Identical up to end-of-run row-buffer state (timing changes
    // which dirty rows have been evicted when the run stops); the
    // point is the absence of ORAM's ~100x amplification.
    EXPECT_LT(protected_result.cellWrites,
              base_result.cellWrites * 1.15 + 200);
    EXPECT_GT(protected_result.cellWrites + 200.0,
              base_result.cellWrites * 0.85);
}

TEST(ObfusMem, CountersStaySynchronized)
{
    System sys(smallConfig(ProtectionMode::ObfusMemAuth));
    sys.run();
    EXPECT_EQ(sys.memSides()[0]->desyncEvents(), 0u);
    EXPECT_EQ(sys.memSides()[0]->tamperDetections(), 0u);
    EXPECT_EQ(sys.procSide()->desyncEvents(), 0u);
    EXPECT_EQ(sys.procSide()->tamperDetections(), 0u);
}

TEST(ObfusMem, DroppedMessageDetectedAsDesync)
{
    // Model an attacker deleting a request: the memory-side counter
    // no longer matches, so every subsequent message fails. Recovery
    // off: this test pins down the legacy fail-stop semantics.
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.recovery.enabled = false;
    System sys(cfg);
    DataBlock data = patternBlock(1);
    sys.timedStore(0, 0x5000, data, [](Tick) {});
    sys.eventQueue().run();
    sys.flushAndDrain();

    sys.memSides()[0]->skewRequestCounter(6); // one dropped group
    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();
    // The request decrypts to garbage at the memory: no reply, and
    // the incident is counted (DoS, not silent corruption).
    EXPECT_FALSE(completed);
    EXPECT_GE(sys.memSides()[0]->desyncEvents()
                  + sys.memSides()[0]->tamperDetections(),
              1u);
}

TEST(ObfusMem, ReplayedReplyDetected)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.recovery.enabled = false; // pin fail-stop semantics
    System sys(cfg);
    sys.procSide()->skewResponseCounter(0, 5); // one lost reply
    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();
    EXPECT_FALSE(completed);
    EXPECT_GE(sys.procSide()->desyncEvents()
                  + sys.procSide()->tamperDetections(),
              1u);
}

TEST(ObfusMem, PadAccountingMatchesPaperRecipe)
{
    // 6 pads per request group + 5 per reply on each side
    // (Sec. 5.2's energy analysis counts these).
    System sys(smallConfig(ProtectionMode::ObfusMemAuth));
    sys.run();
    auto &ps = *sys.procSide();
    double groups = ps.stats().scalarValue("realReads")
                    + ps.stats().scalarValue("realWrites")
                    + ps.stats().scalarValue("channelFillGroups");
    double replies = ps.stats().scalarValue("realReads")
                     + ps.stats().scalarValue("realWrites")
                     + ps.stats().scalarValue("channelFillGroups")
                     - ps.stats().scalarValue("forwardedFromWriteQueue")
                     - ps.stats().scalarValue("realFillSubstitutions");
    (void)replies;
    EXPECT_GE(ps.padsGenerated(),
              static_cast<uint64_t>(groups
                                    * countersPerRequestGroup));
}

TEST(ObfusMem, BootProtocolKeysWork)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.runBootProtocol = true;
    System sys(cfg);
    DataBlock data = patternBlock(0x42);
    sys.timedStore(0, 0x7000, data, [](Tick) {});
    sys.eventQueue().run();
    sys.flushAndDrain();
    EXPECT_EQ(sys.functionalRead(0x7000), data);
    EXPECT_EQ(sys.memSides()[0]->desyncEvents(), 0u);
}

TEST(ObfusMem, AuthCostsMoreThanNoAuth)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMem);
    cfg.instrPerCore = 50000;
    System no_auth(cfg);
    auto r1 = no_auth.run();

    cfg.mode = ProtectionMode::ObfusMemAuth;
    System with_auth(cfg);
    auto r2 = with_auth.run();
    EXPECT_GE(r2.execTicks, r1.execTicks);
}

class DummyPolicySweep
    : public ::testing::TestWithParam<DummyPolicy>
{
};

TEST_P(DummyPolicySweep, FunctionalUnderAllPolicies)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.dummyPolicy = GetParam();
    System sys(cfg);
    DataBlock data = patternBlock(0x33);
    sys.timedStore(0, 0x9000, data, [](Tick) {});
    sys.eventQueue().run();
    sys.flushAndDrain();
    EXPECT_EQ(sys.functionalRead(0x9000), data);

    // And a short workload still completes with synchronized state.
    auto result = sys.run();
    EXPECT_GT(result.instructions, 0u);
    EXPECT_EQ(sys.memSides()[0]->desyncEvents(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, DummyPolicySweep,
                         ::testing::Values(DummyPolicy::Fixed,
                                           DummyPolicy::Original,
                                           DummyPolicy::Random));

TEST(ObfusMem, NonFixedPoliciesCostPcmAccesses)
{
    // Observation 2: only the fixed-address design allows dropping.
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.dummyPolicy = DummyPolicy::Original;
    System sys(cfg);
    sys.run();
    EXPECT_GT(
        sys.memSides()[0]->stats().scalarValue("dummyPcmAccesses"),
        0.0);
}

TEST(ObfusMem, OriginalPolicyAmplifiesWrites)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.dummyPolicy = DummyPolicy::Fixed;
    System fixed(cfg);
    auto fixed_result = fixed.run();

    cfg.obfusmem.dummyPolicy = DummyPolicy::Original;
    System original(cfg);
    auto original_result = original.run();

    EXPECT_GT(original_result.cellWrites, fixed_result.cellWrites);
}

TEST(ObfusMem, UniformPacketsFunctional)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.uniformPackets = true;
    System sys(cfg);
    DataBlock data = patternBlock(0x61);
    sys.timedStore(0, 0xa000, data, [](Tick) {});
    sys.eventQueue().run();
    sys.flushAndDrain();
    EXPECT_EQ(sys.functionalRead(0xa000), data);

    auto r = sys.run();
    EXPECT_GT(r.instructions, 0u);
    EXPECT_EQ(sys.memSides()[0]->desyncEvents(), 0u);
}

TEST(ObfusMem, UniformPacketsHideTypesBySize)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.uniformPackets = true;
    System sys(cfg);
    sys.run();
    BusObserver *obs = sys.observer();
    ASSERT_GT(obs->requestMessages(), 100u);
    // Every request message carries a payload: sizes are uniform, so
    // the observer's size-based classifier sees only "writes".
    EXPECT_EQ(obs->apparentReads(), 0u);
}

TEST(ObfusMem, SplitSchemeUsesLessBusThanUniform)
{
    // The paper's Sec. 7 claim versus InvisiMem-style packets.
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.instrPerCore = 30000;
    System split(cfg);
    split.run();
    uint64_t split_bytes = split.observer()->bytesToMemory()
                           + split.observer()->bytesToProcessor();

    cfg.obfusmem.uniformPackets = true;
    System uniform(cfg);
    uniform.run();
    uint64_t uniform_bytes = uniform.observer()->bytesToMemory()
                             + uniform.observer()->bytesToProcessor();
    EXPECT_LT(split_bytes, uniform_bytes);
}

TEST(ObfusMem, TimingObliviousFunctional)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.timingOblivious = true;
    System sys(cfg);
    DataBlock data = patternBlock(0x62);
    sys.timedStore(0, 0xb000, data, [](Tick) {});
    sys.eventQueue().run();
    sys.flushAndDrain();
    EXPECT_EQ(sys.functionalRead(0xb000), data);
}

// --- Counter-ahead pad prefetch (host-side optimization) ------------

namespace {

/** Records every field the wires expose, message by message. */
struct WireRecorder : public BusProbe
{
    struct Rec
    {
        Tick when;
        BusDir dir;
        uint32_t bytes;
        uint64_t wireAddr;
        bool wireIsWrite;
        unsigned channel;

        bool operator==(const Rec &) const = default;
    };

    std::vector<Rec> trace;

    void
    observe(const BusSnoop &s) override
    {
        trace.push_back({s.when, s.dir, s.bytes, s.wireAddr,
                         s.wireIsWrite, s.channel});
    }
};

struct RecordedRun
{
    std::vector<WireRecorder::Rec> trace;
    /** At-rest ciphertext of hand-stored blocks (the payload bytes). */
    std::vector<DataBlock> ciphertexts;
    Tick execTicks;
};

/** The same workload under an explicit pad-prefetch depth. */
RecordedRun
recordedRun(unsigned prefetch_depth)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.padPrefetchDepth = prefetch_depth;
    cfg.encryption.padMemoEntries = prefetch_depth ? 256 : 0;
    System sys(cfg);
    WireRecorder rec;
    for (auto &bus : sys.channelBuses())
        bus->attachProbe(&rec);

    RecordedRun out;
    out.execTicks = sys.run().execTicks;
    for (uint8_t i = 0; i < 16; ++i) {
        sys.timedStore(0, 0x30000 + i * 64ull, patternBlock(i),
                       [](Tick) {});
    }
    sys.eventQueue().run();
    sys.flushAndDrain();
    for (uint8_t i = 0; i < 16; ++i)
        out.ciphertexts.push_back(
            sys.backingStore().read(0x30000 + i * 64ull));
    out.trace = std::move(rec.trace);
    return out;
}

} // namespace

TEST(PadPrefetch, WireTrafficBitIdenticalOnVsOff)
{
    // The prefetcher only moves pad generation earlier in host time;
    // pads are pure functions of (key, counter), so every message's
    // timing, size, direction and ciphertext header bits must be
    // byte-for-byte identical with the pipeline on and off — and so
    // must the at-rest ciphertext (the payload bytes that crossed).
    RecordedRun off = recordedRun(0);
    RecordedRun on = recordedRun(8);

    ASSERT_GT(off.trace.size(), 100u);
    ASSERT_EQ(off.trace.size(), on.trace.size());
    for (size_t i = 0; i < off.trace.size(); ++i) {
        ASSERT_TRUE(off.trace[i] == on.trace[i])
            << "wire message " << i << " differs (tick "
            << off.trace[i].when << " vs " << on.trace[i].when << ")";
    }
    EXPECT_EQ(off.execTicks, on.execTicks);
    EXPECT_EQ(off.ciphertexts, on.ciphertexts);
}

TEST(PadPrefetch, PrefetchedRunStaysFunctional)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.padPrefetchDepth = 8;
    System sys(cfg);
    DataBlock data = patternBlock(0x55);
    sys.timedStore(0, 0xc000, data, [](Tick) {});
    sys.eventQueue().run();
    sys.flushAndDrain();
    EXPECT_EQ(sys.functionalRead(0xc000), data);

    auto r = sys.run();
    EXPECT_GT(r.instructions, 0u);
    EXPECT_EQ(sys.memSides()[0]->desyncEvents(), 0u);
    EXPECT_GT(sys.procSide()->stats().scalarValue("padPrefetchHits"),
              0.0);
}

TEST(PadPrefetch, NullStatsPointerIsSafe)
{
    // The prefetcher is usable standalone (tools, future endpoints)
    // without a stats block; every counter touch must be guarded.
    crypto::Aes128::Key key{};
    key[0] = 0x5a;
    crypto::AesCtr ctr(key, 17);
    PadPrefetcher ring;
    ring.configure(ctr, countersPerRequestGroup, 4, nullptr);

    GroupPads direct = genGroupPads(ctr, 0);
    std::array<crypto::Block128, countersPerRequestGroup> out{};
    ring.take(0, out.data());
    EXPECT_EQ(std::memcmp(out.data(), direct.pad.data(),
                          sizeof(out)),
              0);
    if (ring.shouldScheduleRefill())
        ring.refill();
    ring.take(countersPerRequestGroup, out.data()); // ring hit
    ring.invalidate();
    ring.take(5 * countersPerRequestGroup, out.data()); // cold miss
    GroupPads direct2 = genGroupPads(ctr, 5 * countersPerRequestGroup);
    EXPECT_EQ(std::memcmp(out.data(), direct2.pad.data(),
                          sizeof(out)),
              0);
}

TEST(PadPrefetch, CounterSkewStillDetectedWithPrefetchOn)
{
    // The prefetch ring must not mask a desync: skewing the memory-
    // side request counter invalidates staged pads on that side, and
    // the processor's (prefetched) pads now decrypt the attacker-
    // shifted stream to garbage exactly as before.
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.padPrefetchDepth = 8;
    cfg.obfusmem.recovery.enabled = false; // pin fail-stop semantics
    System sys(cfg);
    DataBlock data = patternBlock(2);
    sys.timedStore(0, 0x5000, data, [](Tick) {});
    sys.eventQueue().run();
    sys.flushAndDrain();

    sys.memSides()[0]->skewRequestCounter(6);
    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();
    EXPECT_FALSE(completed);
    EXPECT_GE(sys.memSides()[0]->desyncEvents()
                  + sys.memSides()[0]->tamperDetections(),
              1u);
}

TEST(PadPrefetch, ReplySkewStillDetectedWithPrefetchOn)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.padPrefetchDepth = 8;
    cfg.obfusmem.recovery.enabled = false; // pin fail-stop semantics
    System sys(cfg);
    sys.procSide()->skewResponseCounter(0, 5);
    bool completed = false;
    sys.timedLoad(0, 0x40000000, [&](Tick) { completed = true; });
    sys.eventQueue().run();
    EXPECT_FALSE(completed);
    EXPECT_GE(sys.procSide()->desyncEvents()
                  + sys.procSide()->tamperDetections(),
              1u);
}

TEST(PadPrefetch, AuditorStaysCleanWithPrefetchOn)
{
    // The trace auditor checks the paper's obliviousness invariants
    // from the attacker's vantage point; the prefetch pipeline must
    // be invisible to it.
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.padPrefetchDepth = 8;
    cfg.attachAuditor = true;
    System sys(cfg);
    sys.run();
    ASSERT_NE(sys.auditor(), nullptr);
    EXPECT_TRUE(sys.auditor()->finalize());
    EXPECT_EQ(sys.auditor()->totalViolations(), 0u);
}

TEST(PadPrefetch, AuditorStillFlagsTamperWithPrefetchOn)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.obfusmem.padPrefetchDepth = 8;
    cfg.attachAuditor = true;
    System sys(cfg);
    DataBlock data = patternBlock(3);
    sys.timedStore(0, 0x5000, data, [](Tick) {});
    sys.eventQueue().run();
    sys.flushAndDrain();

    sys.memSides()[0]->skewRequestCounter(6);
    sys.timedLoad(0, 0x40000000, [](Tick) {});
    sys.eventQueue().run();
    sys.auditor()->finalize();
    EXPECT_GE(sys.auditor()->violationCountFor(
                  check::Invariant::EndpointIncident),
              1u);
}

TEST(ObfusMem, TimingObliviousPacesTheWire)
{
    SystemConfig cfg = smallConfig(ProtectionMode::ObfusMemAuth);
    cfg.instrPerCore = 10000;
    cfg.obfusmem.timingOblivious = true;
    cfg.obfusmem.issueEpoch = 80 * tickPerNs;
    System sys(cfg);
    auto r = sys.run();

    // One group (two request messages) per epoch at most; the drain
    // after the cores finish adds a few more epochs.
    uint64_t max_groups =
        sys.eventQueue().curTick() / cfg.obfusmem.issueEpoch + 2;
    EXPECT_LE(sys.observer()->requestMessages(), 2 * max_groups);

    // Dummies are serviced, never dropped (worst-case timing).
    EXPECT_EQ(
        sys.memSides()[0]->stats().scalarValue("dummyWritesDropped"),
        0.0);

    // And it costs more than plain ObfusMem.
    cfg.obfusmem.timingOblivious = false;
    System plain(cfg);
    EXPECT_GE(r.execTicks, plain.run().execTicks);
}
