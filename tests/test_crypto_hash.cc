/**
 * @file
 * Known-answer tests for MD5 (RFC 1321), SHA-1 (RFC 3174 / FIPS
 * 180-1) and HMAC (RFC 2202).
 */

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "crypto/bytes.hh"
#include "crypto/hmac.hh"
#include "crypto/md5.hh"
#include "crypto/md5_lanes.hh"
#include "crypto/sha1.hh"

using namespace obfusmem::crypto;

namespace {

std::string
md5Hex(const std::string &s)
{
    return toHex(Md5::digest(s));
}

std::string
sha1Hex(const std::string &s)
{
    return toHex(Sha1::digest(s));
}

} // namespace

TEST(Md5, Rfc1321TestSuite)
{
    EXPECT_EQ(md5Hex(""), "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(md5Hex("a"), "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(md5Hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(md5Hex("message digest"),
              "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(md5Hex("abcdefghijklmnopqrstuvwxyz"),
              "c3fcd3d76192e4007dfb496cca67e13b");
    EXPECT_EQ(md5Hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstu"
                     "vwxyz0123456789"),
              "d174ab98d277d9f5a5611c2c9f419d9f");
    EXPECT_EQ(md5Hex("1234567890123456789012345678901234567890123456"
                     "7890123456789012345678901234567890"),
              "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot)
{
    std::string msg = "the quick brown fox jumps over the lazy dog, "
                      "repeatedly, across block boundaries. ";
    for (int i = 0; i < 4; ++i)
        msg += msg;

    Md5 ctx;
    size_t pos = 0;
    size_t chunk = 7;
    while (pos < msg.size()) {
        size_t n = std::min(chunk, msg.size() - pos);
        ctx.update(reinterpret_cast<const uint8_t *>(msg.data()) + pos,
                   n);
        pos += n;
        chunk = chunk * 3 + 1;
    }
    EXPECT_EQ(toHex(ctx.finalize()), md5Hex(msg));
}

TEST(Md5, ExactBlockSizeMessages)
{
    // 55/56/64/119/128 bytes cross the padding edge cases.
    for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 128u}) {
        std::string msg(len, 'x');
        Md5 ctx;
        ctx.update(reinterpret_cast<const uint8_t *>(msg.data()),
                   msg.size());
        EXPECT_EQ(toHex(ctx.finalize()), md5Hex(msg)) << len;
    }
}

TEST(Sha1, KnownVectors)
{
    EXPECT_EQ(sha1Hex("abc"),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
    EXPECT_EQ(sha1Hex(""),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    EXPECT_EQ(sha1Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlm"
                      "nomnopnopq"),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs)
{
    Sha1 ctx;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) {
        ctx.update(reinterpret_cast<const uint8_t *>(chunk.data()),
                   chunk.size());
    }
    EXPECT_EQ(toHex(ctx.finalize()),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(HmacMd5, Rfc2202Case1)
{
    std::vector<uint8_t> key(16, 0x0b);
    std::string msg = "Hi There";
    auto mac = hmacMd5(key.data(), key.size(),
                       reinterpret_cast<const uint8_t *>(msg.data()),
                       msg.size());
    EXPECT_EQ(toHex(mac), "9294727a3638bb1c13f48ef8158bfc9d");
}

TEST(HmacMd5, Rfc2202Case2)
{
    std::string key = "Jefe";
    std::string msg = "what do ya want for nothing?";
    auto mac = hmacMd5(reinterpret_cast<const uint8_t *>(key.data()),
                       key.size(),
                       reinterpret_cast<const uint8_t *>(msg.data()),
                       msg.size());
    EXPECT_EQ(toHex(mac), "750c783e6ab0b503eaa86e310a5db738");
}

TEST(HmacMd5, Rfc2202Case6LongKey)
{
    std::vector<uint8_t> key(80, 0xaa);
    std::string msg = "Test Using Larger Than Block-Size Key - "
                      "Hash Key First";
    auto mac = hmacMd5(key.data(), key.size(),
                       reinterpret_cast<const uint8_t *>(msg.data()),
                       msg.size());
    EXPECT_EQ(toHex(mac), "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd");
}

TEST(HmacSha1, Rfc2202Case1)
{
    std::vector<uint8_t> key(20, 0x0b);
    std::string msg = "Hi There";
    auto mac = hmacSha1(key.data(), key.size(),
                        reinterpret_cast<const uint8_t *>(msg.data()),
                        msg.size());
    EXPECT_EQ(toHex(mac), "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2)
{
    std::string key = "Jefe";
    std::string msg = "what do ya want for nothing?";
    auto mac = hmacSha1(reinterpret_cast<const uint8_t *>(key.data()),
                        key.size(),
                        reinterpret_cast<const uint8_t *>(msg.data()),
                        msg.size());
    EXPECT_EQ(toHex(mac), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(Hash, HexRoundTrip)
{
    std::string hex = "00ff17a2deadbeef0123456789abcdef";
    auto bytes = fromHex(hex);
    EXPECT_EQ(toHex(bytes.data(), bytes.size()), hex);
}

TEST(Md5EngineParams, MatchesPaperSynthesis)
{
    // Paper Sec. 4: 64-stage pipeline, 12.5 mW, 0.214 mm^2.
    EXPECT_EQ(Md5EngineParams::pipelineStages, 64u);
    EXPECT_NEAR(Md5EngineParams::powerMw, 12.5, 1e-9);
    EXPECT_NEAR(Md5EngineParams::areaMm2, 0.214, 1e-9);
}

TEST(CtEqual, MatchesAndMismatches)
{
    std::array<uint8_t, 16> a{}, b{};
    for (size_t i = 0; i < a.size(); ++i)
        a[i] = b[i] = static_cast<uint8_t>(i * 7 + 3);
    EXPECT_TRUE(ctEqual(a, b));

    // A difference in any single byte must be caught - ctEqual must
    // not short-circuit correctness while avoiding short-circuit
    // timing.
    for (size_t i = 0; i < a.size(); ++i) {
        std::array<uint8_t, 16> c = b;
        c[i] ^= 0x80;
        EXPECT_FALSE(ctEqual(a, c)) << "byte " << i;
    }
}

TEST(CtEqual, AgreesWithOperatorEq)
{
    // ctEqual guards the MAC verification path; it must agree with
    // plain comparison on every input, differing only in timing.
    std::array<uint8_t, 4> x{1, 2, 3, 4};
    std::array<uint8_t, 4> y{1, 2, 3, 5};
    EXPECT_EQ(ctEqual(x, x), x == x);
    EXPECT_EQ(ctEqual(x, y), x == y);
}

TEST(SecureZero, ClearsBuffer)
{
    std::array<uint8_t, 32> key;
    key.fill(0xa5);
    secureZero(key);
    for (uint8_t byte : key)
        EXPECT_EQ(byte, 0u);
}

TEST(Md5Lanes, BatchMatchesScalarAcrossGroupBoundaries)
{
    // md5ShortBatch must be bit-identical to the scalar context for
    // every batch size, in particular around the 8/16/32 grouping
    // boundaries where the dispatch switches between the paired and
    // single wide kernels and the scalar tail.
    const size_t len = 17; // the MAC preimage length
    for (size_t n : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 23u, 24u,
                     31u, 32u, 33u, 47u, 48u, 63u, 64u, 65u}) {
        std::vector<uint8_t> msgs(n * len);
        for (size_t i = 0; i < msgs.size(); ++i)
            msgs[i] = static_cast<uint8_t>(i * 131 + n);
        std::vector<Md5Digest> got(n);
        md5ShortBatch(msgs.data(), len, len, n, got.data());
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(got[i], Md5::digest(msgs.data() + i * len, len))
                << "n=" << n << " i=" << i;
    }
}

TEST(Md5Lanes, EveryShortLength)
{
    // Lengths 0..55 cover all four boundary-word remainders and the
    // longest message that still pads into one compression block.
    // The stride is the exact message length, so any read past a
    // message's end would read the neighbour and diverge.
    const size_t n = 2 * md5LaneWidthZmm + md5LaneWidth + 3;
    for (size_t len = 0; len <= md5ShortMax; ++len) {
        const size_t stride = len ? len : 1;
        std::vector<uint8_t> msgs(n * stride + 1);
        for (size_t i = 0; i < msgs.size(); ++i)
            msgs[i] = static_cast<uint8_t>(i * 37 + len);
        std::vector<Md5Digest> got(n);
        md5ShortBatch(msgs.data(), stride, len, n, got.data());
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(got[i],
                      Md5::digest(msgs.data() + i * stride, len))
                << "len=" << len << " i=" << i;
    }
}

TEST(Md5Lanes, AvailabilityIsConsistent)
{
    // md5LanesAvailable() promises a wide kernel; the compiled-in
    // probes must back it up.
    if (md5LanesAvailable()) {
        EXPECT_TRUE(detail::md5LanesAvx2CompiledIn()
                    || detail::md5LanesAvx512CompiledIn());
    }
}
