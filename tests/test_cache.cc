/**
 * @file
 * Cache hierarchy tests: the functional cache, hit/miss timing,
 * MSHRs, writebacks, coherence and flushes.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cpu/cache_hierarchy.hh"

using namespace obfusmem;

namespace {

/** Memory stub with configurable latency that records packets. */
class StubMemory : public MemSink
{
  public:
    StubMemory(EventQueue &eq, Tick latency = 100 * tickPerNs)
        : eq(eq), latency(latency)
    {}

    void
    access(MemPacket pkt, PacketCallback cb) override
    {
        if (pkt.isWrite()) {
            ++writes;
            contents[pkt.addr] = pkt.data;
        } else {
            ++reads;
        }
        eq.scheduleAfter(latency,
            [this, pkt = std::move(pkt),
             cb = std::move(cb)]() mutable {
                if (pkt.isRead()) {
                    auto it = contents.find(pkt.addr);
                    if (it != contents.end())
                        pkt.data = it->second;
                }
                cb(std::move(pkt));
            });
    }

    EventQueue &eq;
    Tick latency;
    uint64_t reads = 0, writes = 0;
    std::map<uint64_t, DataBlock> contents;
};

class CacheFixture : public ::testing::Test
{
  protected:
    CacheFixture()
        : stats("test", nullptr), mem(eq),
          caches("caches", eq, &stats, HierarchyParams{}, mem)
    {}

    Tick
    load(int core, uint64_t addr)
    {
        Tick done = 0;
        bool fired = false;
        caches.load(core, addr, eq.curTick(), [&](Tick t) {
            done = t;
            fired = true;
        });
        eq.run();
        EXPECT_TRUE(fired);
        return done;
    }

    Tick
    store(int core, uint64_t addr, uint8_t fill)
    {
        DataBlock data;
        data.fill(fill);
        Tick done = 0;
        caches.store(core, addr, data, eq.curTick(),
                     [&](Tick t) { done = t; });
        eq.run();
        return done;
    }

    EventQueue eq;
    statistics::Group stats;
    StubMemory mem;
    CacheHierarchy caches;
    HierarchyParams params;
};

} // namespace

TEST(FuncCache, InsertFindInvalidate)
{
    FuncCache cache(CacheParams{4096, 4, 1});
    DataBlock data{};
    data[0] = 7;
    EXPECT_EQ(cache.find(0x100), nullptr);
    cache.insert(0x100, data, true, false);
    auto *line = cache.find(0x100);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->data[0], 7);
    EXPECT_TRUE(line->dirty);

    auto victim = cache.invalidate(0x100);
    EXPECT_TRUE(victim.valid);
    EXPECT_TRUE(victim.dirty);
    EXPECT_EQ(cache.find(0x100), nullptr);
}

TEST(FuncCache, LruEviction)
{
    // 2-way, 2 sets (256 B at 64 B blocks).
    FuncCache cache(CacheParams{256, 2, 1});
    DataBlock data{};
    // Three blocks mapping to set 0: addresses 0, 128, 256.
    cache.insert(0, data, false, false);
    cache.insert(128, data, false, false);
    cache.find(0); // touch 0, making 128 the LRU
    auto victim = cache.insert(256, data, false, false);
    EXPECT_TRUE(victim.valid);
    EXPECT_EQ(victim.addr, 128u);
    EXPECT_NE(cache.find(0), nullptr);
    EXPECT_NE(cache.find(256), nullptr);
}

TEST(FuncCache, InsertMergesOnHit)
{
    FuncCache cache(CacheParams{4096, 4, 1});
    DataBlock a{}, b{};
    a[0] = 1;
    b[0] = 2;
    cache.insert(0x40, a, false, false);
    auto victim = cache.insert(0x40, b, true, true);
    EXPECT_FALSE(victim.valid);
    auto *line = cache.find(0x40);
    EXPECT_EQ(line->data[0], 2);
    EXPECT_TRUE(line->dirty);
    EXPECT_TRUE(line->exclusive);
}

TEST_F(CacheFixture, MissGoesToMemoryHitDoesNot)
{
    load(0, 0x1000);
    EXPECT_EQ(mem.reads, 1u);
    load(0, 0x1000);
    EXPECT_EQ(mem.reads, 1u); // L1 hit now
}

TEST_F(CacheFixture, HitLatenciesAreLevelDependent)
{
    Tick miss_time = load(0, 0x2000) - eq.curTick() + mem.latency;
    (void)miss_time;

    // L1 hit: 2 cycles at 500 ps.
    Tick start = eq.curTick();
    Tick l1 = load(0, 0x2000);
    EXPECT_EQ(l1 - start, params.l1.latencyCycles * 500);
}

TEST_F(CacheFixture, MissLatencyIncludesMemory)
{
    Tick start = eq.curTick();
    Tick done = load(0, 0x3000);
    EXPECT_GE(done - start, mem.latency);
}

TEST_F(CacheFixture, MshrMergesConcurrentMisses)
{
    int completions = 0;
    caches.load(0, 0x4000, eq.curTick(),
                [&](Tick) { ++completions; });
    caches.load(1, 0x4000, eq.curTick(),
                [&](Tick) { ++completions; });
    eq.run();
    EXPECT_EQ(completions, 2);
    EXPECT_EQ(mem.reads, 1u); // one fill serves both
    EXPECT_EQ(stats.scalarValue("caches.mshrMerges"), 1.0);
}

TEST_F(CacheFixture, StoreWritesThroughOnEviction)
{
    store(0, 0x5000, 0xab);
    EXPECT_EQ(mem.writes, 0u); // dirty in cache

    bool flushed = false;
    caches.flushAll(eq.curTick(), [&](Tick) { flushed = true; });
    eq.run();
    EXPECT_TRUE(flushed);
    ASSERT_EQ(mem.writes, 1u);
    EXPECT_EQ(mem.contents[0x5000][0], 0xab);
}

TEST_F(CacheFixture, StoreDataVisibleToOtherCore)
{
    store(0, 0x6000, 0x42);
    // Core 1 loads the same block: coherence must supply core 0's
    // dirty data.
    DataBlock out{};
    bool got = false;
    caches.load(1, 0x6000, eq.curTick(), [&](Tick) { got = true; });
    eq.run();
    EXPECT_TRUE(got);
    EXPECT_TRUE(caches.peekBlock(0x6000, out));
    EXPECT_EQ(out[0], 0x42);
    EXPECT_GE(stats.scalarValue("caches.downgrades"), 1.0);
}

TEST_F(CacheFixture, StoreInvalidatesOtherSharers)
{
    load(0, 0x7000);
    load(1, 0x7000);
    store(2, 0x7000, 0x99);
    EXPECT_GE(stats.scalarValue("caches.invalidations"), 2.0);

    DataBlock out{};
    EXPECT_TRUE(caches.peekBlock(0x7000, out));
    EXPECT_EQ(out[0], 0x99);
}

TEST_F(CacheFixture, SequentialStoresLastWins)
{
    store(0, 0x8000, 1);
    store(1, 0x8000, 2);
    store(0, 0x8000, 3);
    DataBlock out{};
    EXPECT_TRUE(caches.peekBlock(0x8000, out));
    EXPECT_EQ(out[0], 3);
}

TEST_F(CacheFixture, WouldMissProbe)
{
    EXPECT_TRUE(caches.wouldMiss(0, 0x9000));
    load(0, 0x9000);
    EXPECT_FALSE(caches.wouldMiss(0, 0x9000));
    // Another core shares the L3 copy.
    EXPECT_FALSE(caches.wouldMiss(1, 0x9000));
}

TEST_F(CacheFixture, PreloadAvoidsMemoryTraffic)
{
    DataBlock data{};
    data[0] = 0x77;
    caches.preload(0, 0xa000, data);
    EXPECT_EQ(mem.reads, 0u);
    load(0, 0xa000);
    EXPECT_EQ(mem.reads, 0u);
    DataBlock out{};
    EXPECT_TRUE(caches.peekBlock(0xa000, out));
    EXPECT_EQ(out[0], 0x77);
}

TEST_F(CacheFixture, PreloadSharedDirtyProducesWriteback)
{
    // Fill one L3 set completely with dirty preloads, then force an
    // eviction with demand fills to the same set.
    uint64_t l3_sets = (params.l3.sizeBytes / 64) / params.l3.assoc;
    uint64_t set_stride = l3_sets * 64;
    DataBlock data{};
    for (unsigned w = 0; w < params.l3.assoc; ++w)
        caches.preloadShared(w * set_stride, data, true);
    load(0, params.l3.assoc * set_stride);
    eq.run();
    EXPECT_GE(mem.writes, 1u);
    EXPECT_EQ(stats.scalarValue("caches.writebacks"), mem.writes);
}

TEST_F(CacheFixture, StreamingEvictsCleanlyWithoutWrites)
{
    // Read-only streaming never writes back.
    for (uint64_t i = 0; i < 1000; ++i)
        load(0, 0x100000 + i * 64);
    EXPECT_EQ(mem.writes, 0u);
}

TEST_F(CacheFixture, InclusiveL3EvictionInvalidatesL1)
{
    // Fill an L3 set with blocks from different cores; the victim's
    // private copies must be expelled too.
    uint64_t l3_sets = (params.l3.sizeBytes / 64) / params.l3.assoc;
    uint64_t set_stride = l3_sets * 64;

    load(0, 0); // the block we will evict
    for (unsigned w = 1; w <= params.l3.assoc; ++w)
        load(1, w * set_stride);

    // Core 0's copy must be gone: loading it again misses to memory.
    uint64_t reads_before = mem.reads;
    load(0, 0);
    EXPECT_EQ(mem.reads, reads_before + 1);
}

TEST_F(CacheFixture, LlcMissCountTracksDemandMisses)
{
    EXPECT_EQ(caches.llcMissCount(), 0u);
    load(0, 0x10000);
    load(0, 0x20000);
    load(0, 0x10000); // hit
    EXPECT_EQ(caches.llcMissCount(), 2u);
}
