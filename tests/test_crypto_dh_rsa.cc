/**
 * @file
 * Diffie-Hellman and RSA tests: the public-key machinery backing the
 * ObfusMem trust architecture.
 */

#include <gtest/gtest.h>

#include "crypto/dh.hh"
#include "crypto/rsa.hh"
#include "util/random.hh"

using namespace obfusmem;
using namespace obfusmem::crypto;

TEST(Dh, SharedSecretsAgreeTestGroup)
{
    Random rng(1);
    const DhGroup &group = DhGroup::testGroup256();
    DhEndpoint alice(group, rng);
    DhEndpoint bob(group, rng);
    BigUint sa = alice.computeShared(bob.publicValue());
    BigUint sb = bob.computeShared(alice.publicValue());
    EXPECT_EQ(sa, sb);
    EXPECT_FALSE(sa.isZero());
}

TEST(Dh, SharedSecretsAgreeModp2048)
{
    Random rng(2);
    const DhGroup &group = DhGroup::modp2048();
    EXPECT_EQ(group.prime.bitLength(), 2048u);
    DhEndpoint alice(group, rng);
    DhEndpoint bob(group, rng);
    EXPECT_EQ(alice.computeShared(bob.publicValue()),
              bob.computeShared(alice.publicValue()));
}

TEST(Dh, DistinctSessionsDistinctSecrets)
{
    Random rng(3);
    const DhGroup &group = DhGroup::testGroup256();
    DhEndpoint a1(group, rng), b1(group, rng);
    DhEndpoint a2(group, rng), b2(group, rng);
    EXPECT_NE(a1.computeShared(b1.publicValue()),
              a2.computeShared(b2.publicValue()));
}

TEST(Dh, SessionKeyDerivationDeterministic)
{
    Random rng(4);
    const DhGroup &group = DhGroup::testGroup256();
    DhEndpoint a(group, rng), b(group, rng);
    BigUint s = a.computeShared(b.publicValue());
    EXPECT_EQ(DhEndpoint::deriveSessionKey(s),
              DhEndpoint::deriveSessionKey(s));
    BigUint s2 = s + BigUint(1);
    EXPECT_NE(DhEndpoint::deriveSessionKey(s),
              DhEndpoint::deriveSessionKey(s2));
}

TEST(Dh, SessionKeySurvivesSourceScrubbing)
{
    // deriveSessionKey scrubs its intermediate buffers; the returned
    // key must be intact and usable afterwards, and the caller's
    // shared-secret argument must not be modified.
    Random rng(14);
    const DhGroup &group = DhGroup::testGroup256();
    DhEndpoint a(group, rng), b(group, rng);
    BigUint s = a.computeShared(b.publicValue());
    BigUint s_copy = s;
    Aes128::Key key = DhEndpoint::deriveSessionKey(s);
    EXPECT_EQ(s, s_copy);
    bool all_zero = true;
    for (uint8_t byte : key)
        all_zero = all_zero && byte == 0;
    EXPECT_FALSE(all_zero);
}

TEST(Dh, PublicValueInRange)
{
    Random rng(5);
    const DhGroup &group = DhGroup::testGroup256();
    for (int i = 0; i < 10; ++i) {
        DhEndpoint e(group, rng);
        EXPECT_TRUE(e.publicValue() < group.prime);
        EXPECT_TRUE(e.publicValue() > BigUint(1));
    }
}

TEST(DhDeathTest, RejectsDegeneratePeerValues)
{
    Random rng(6);
    const DhGroup &group = DhGroup::testGroup256();
    DhEndpoint e(group, rng);
    EXPECT_EXIT(e.computeShared(BigUint(0)),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(e.computeShared(BigUint(1)),
                ::testing::ExitedWithCode(1), "degenerate");
    EXPECT_EXIT(e.computeShared(group.prime),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(Rsa, SignVerifyRoundTrip)
{
    Random rng(7);
    RsaKeyPair kp = RsaKeyPair::generate(256, rng);
    std::string msg = "attestation quote";
    BigUint sig = kp.sign(
        reinterpret_cast<const uint8_t *>(msg.data()), msg.size());
    EXPECT_TRUE(RsaKeyPair::verify(
        kp.publicKey(), reinterpret_cast<const uint8_t *>(msg.data()),
        msg.size(), sig));
}

TEST(Rsa, SigningIsDeterministic)
{
    // Signing goes through the constant-time ladder; it must remain
    // a deterministic function of (message, key).
    Random rng(13);
    RsaKeyPair kp = RsaKeyPair::generate(256, rng);
    std::string msg = "ladder regression";
    const uint8_t *p = reinterpret_cast<const uint8_t *>(msg.data());
    EXPECT_EQ(kp.sign(p, msg.size()), kp.sign(p, msg.size()));
}

TEST(Rsa, TamperedMessageFailsVerification)
{
    Random rng(8);
    RsaKeyPair kp = RsaKeyPair::generate(256, rng);
    std::string msg = "attestation quote";
    BigUint sig = kp.sign(
        reinterpret_cast<const uint8_t *>(msg.data()), msg.size());
    std::string tampered = "attestation quote!";
    EXPECT_FALSE(RsaKeyPair::verify(
        kp.publicKey(),
        reinterpret_cast<const uint8_t *>(tampered.data()),
        tampered.size(), sig));
}

TEST(Rsa, WrongKeyFailsVerification)
{
    Random rng(9);
    RsaKeyPair kp1 = RsaKeyPair::generate(256, rng);
    RsaKeyPair kp2 = RsaKeyPair::generate(256, rng);
    std::string msg = "hello";
    BigUint sig = kp1.sign(
        reinterpret_cast<const uint8_t *>(msg.data()), msg.size());
    EXPECT_FALSE(RsaKeyPair::verify(
        kp2.publicKey(), reinterpret_cast<const uint8_t *>(msg.data()),
        msg.size(), sig));
}

TEST(Rsa, ForgedSignatureFailsVerification)
{
    Random rng(10);
    RsaKeyPair kp = RsaKeyPair::generate(256, rng);
    std::string msg = "hello";
    BigUint forged = BigUint::randomBits(200, rng);
    EXPECT_FALSE(RsaKeyPair::verify(
        kp.publicKey(), reinterpret_cast<const uint8_t *>(msg.data()),
        msg.size(), forged));
}

TEST(Rsa, DistinctKeyPairs)
{
    Random rng(11);
    RsaKeyPair a = RsaKeyPair::generate(128, rng);
    RsaKeyPair b = RsaKeyPair::generate(128, rng);
    EXPECT_FALSE(a.publicKey() == b.publicKey());
}
