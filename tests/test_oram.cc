/**
 * @file
 * Path ORAM tests: the functional algorithm's invariants and data
 * integrity, plus the two timing models.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "oram/oram_controller.hh"
#include "oram/path_oram.hh"
#include "system/system.hh"
#include "util/random.hh"

using namespace obfusmem;

TEST(PathOram, ReadAfterWrite)
{
    PathOram::Params params;
    params.levels = 8;
    PathOram oram(params);
    DataBlock data{};
    data[0] = 0x11;
    oram.write(42, data);
    EXPECT_EQ(oram.read(42), data);
}

TEST(PathOram, GeometryMatchesParameters)
{
    PathOram::Params params;
    params.levels = 10;
    params.bucketSize = 4;
    PathOram oram(params);
    EXPECT_EQ(oram.pathBuckets(), 11u);
    EXPECT_EQ(oram.pathBlocks(), 44u);
    EXPECT_EQ(oram.physicalBlocks(), ((2ull << 10) - 1) * 4);
    // >= 100% storage overhead: half the tree is usable.
    EXPECT_EQ(oram.capacityBlocks(), oram.physicalBlocks() / 2);
}

TEST(PathOram, PaperGeometryAmplification)
{
    // L=24, Z=4: ~100 blocks per path (paper Sec. 2.3).
    PathOram::Params params;
    params.levels = 24;
    PathOram oram(params);
    EXPECT_EQ(oram.pathBlocks(), 100u);
}

class PathOramRandomOps
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(PathOramRandomOps, MatchesReferenceMapAndInvariant)
{
    auto [levels, bucket_size] = GetParam();
    PathOram::Params params;
    params.levels = levels;
    params.bucketSize = bucket_size;
    params.stashLimit = 1000;
    PathOram oram(params);

    Random rng(levels * 100 + bucket_size);
    std::map<uint64_t, DataBlock> reference;
    uint64_t block_space = oram.capacityBlocks();

    for (int op = 0; op < 600; ++op) {
        uint64_t block = rng.randUnder(block_space);
        if (rng.chance(0.5)) {
            DataBlock data;
            rng.fillBytes(data.data(), data.size());
            oram.write(block, data);
            reference[block] = data;
        } else if (reference.count(block)) {
            EXPECT_EQ(oram.read(block), reference[block]);
        }
        if (op % 100 == 99) {
            EXPECT_TRUE(oram.checkInvariant()) << "op " << op; }
    }
    EXPECT_TRUE(oram.checkInvariant());
    EXPECT_EQ(oram.stashOverflows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PathOramRandomOps,
    ::testing::Values(std::make_pair(6u, 4u), std::make_pair(8u, 4u),
                      std::make_pair(10u, 4u), std::make_pair(8u, 2u),
                      std::make_pair(8u, 6u)));

TEST(PathOram, RemapsToFreshLeaves)
{
    PathOram::Params params;
    params.levels = 10;
    PathOram oram(params);
    DataBlock data{};
    oram.write(7, data);
    int changes = 0;
    auto prev = oram.leafOf(7);
    for (int i = 0; i < 50; ++i) {
        oram.read(7);
        auto cur = oram.leafOf(7);
        if (cur != prev)
            ++changes;
        prev = cur;
    }
    // With 1024 leaves, nearly every access picks a new leaf.
    EXPECT_GT(changes, 40);
}

TEST(PathOram, PathSlotsCoverWholePath)
{
    PathOram::Params params;
    params.levels = 6;
    PathOram oram(params);
    oram.read(1);
    EXPECT_EQ(oram.lastPathSlots().size(), oram.pathBlocks());
    // The root bucket (0) is always on the path.
    bool has_root = false;
    for (const auto &slot : oram.lastPathSlots())
        has_root |= slot.bucket == 0;
    EXPECT_TRUE(has_root);
}

TEST(PathOram, StashBoundedAtHalfUtilization)
{
    PathOram::Params params;
    params.levels = 8;
    params.stashLimit = 200;
    PathOram oram(params);
    Random rng(3);
    uint64_t blocks = oram.capacityBlocks() / 2;
    for (int i = 0; i < 2000; ++i) {
        DataBlock d{};
        oram.write(rng.randUnder(blocks), d);
    }
    EXPECT_EQ(oram.stashOverflows(), 0u);
    EXPECT_LT(oram.maxStashSize(), 60u);
}

TEST(PathOram, OverfillingTriggersStashPressure)
{
    // Push far past the designed utilization: the stash grows, which
    // is exactly the overflow/deadlock risk the paper describes.
    // Opt out of fail-stop to *measure* the overflow frequency.
    PathOram::Params params;
    params.levels = 4; // 31 buckets * 4 = 124 physical slots
    params.stashLimit = 8;
    params.failOnOverflow = false;
    PathOram oram(params);
    Random rng(4);
    DataBlock d{};
    // More live blocks than the tree has slots: the surplus has
    // nowhere to evict and piles up in the stash.
    for (int i = 0; i < 300; ++i)
        oram.write(i, d);
    EXPECT_GT(oram.maxStashSize(), 8u);
    EXPECT_GT(oram.stashOverflows(), 0u);
}

TEST(PathOramDeathTest, StashOverflowFailStopsByDefault)
{
    // Regression for the silent-overflow bug: a stash past its limit
    // means a hardware controller deadlocks, so by default the model
    // must abort, not keep simulating an impossible machine.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    PathOram::Params params;
    params.levels = 4;
    params.stashLimit = 8;
    PathOram oram(params);
    DataBlock d{};
    EXPECT_DEATH(
        {
            for (int i = 0; i < 300; ++i)
                oram.write(i, d);
        },
        "stash overflow");
}

TEST(PathOram, TransientPeakExceedsPostEvictionStash)
{
    // The mid-access peak holds the whole path plus the accessed
    // block before eviction drains it; sampling only after eviction
    // (the old behavior) systematically under-reports the occupancy
    // a hardware stash must be provisioned for.
    PathOram::Params params;
    params.levels = 8;
    params.stashLimit = 300;
    PathOram oram(params);
    Random rng(9);
    uint64_t blocks = oram.capacityBlocks() / 2;
    for (int i = 0; i < 500; ++i) {
        DataBlock d{};
        oram.write(rng.randUnder(blocks), d);
        EXPECT_GE(oram.lastAccessPeakStash(), oram.stashSize());
    }
    EXPECT_GE(oram.maxTransientStashSize(), oram.maxStashSize());
    // Once the tree is warm, the peak includes a path's worth of
    // read-in blocks on top of the resident stash.
    EXPECT_GT(oram.maxTransientStashSize(), oram.maxStashSize() + 4);
    EXPECT_EQ(oram.stashOverflows(), 0u);
}

TEST(PathOram, SerializeRoundTripsAndReplaysIdentically)
{
    PathOram::Params params;
    params.levels = 7;
    params.stashLimit = 400;
    PathOram a(params);
    Random rng(11);
    for (int i = 0; i < 400; ++i) {
        DataBlock d;
        rng.fillBytes(d.data(), d.size());
        a.write(rng.randUnder(a.capacityBlocks() / 2), d);
    }

    std::stringstream snap;
    a.serialize(snap);
    PathOram b(params);
    ASSERT_TRUE(b.deserialize(snap));

    // Same state and same RNG stream: both instances must now behave
    // bit-identically, including leaf remaps.
    for (int i = 0; i < 200; ++i) {
        uint64_t block = static_cast<uint64_t>(i * 37) % 64;
        EXPECT_EQ(a.read(block), b.read(block)) << "block " << block;
        EXPECT_EQ(a.leafOf(block), b.leafOf(block));
    }
    EXPECT_EQ(a.stashSize(), b.stashSize());
    EXPECT_TRUE(b.checkInvariant());

    // A truncated stream is rejected cleanly.
    std::stringstream full;
    a.serialize(full);
    std::string bytes = full.str();
    std::stringstream cut(bytes.substr(0, bytes.size() / 2));
    PathOram c(params);
    EXPECT_FALSE(c.deserialize(cut));
}

TEST(PathOram, OccupancyNeverExceedsOne)
{
    PathOram::Params params;
    params.levels = 6;
    PathOram oram(params);
    Random rng(5);
    DataBlock d{};
    for (int i = 0; i < 200; ++i)
        oram.write(rng.randUnder(oram.capacityBlocks()), d);
    EXPECT_GT(oram.occupancy(), 0.0);
    EXPECT_LE(oram.occupancy(), 1.0);
}

TEST(OramFixedLatency, AccessTakes2500ns)
{
    EventQueue eq;
    statistics::Group stats("test", nullptr);
    BackingStore store(1ull << 30);
    OramFixedLatency oram("oram", eq, &stats,
                          OramFixedLatency::Params{}, store);
    Tick done = 0;
    MemPacket pkt;
    pkt.cmd = MemCmd::Read;
    pkt.addr = 0x1000;
    oram.access(std::move(pkt),
                [&](MemPacket &&) { done = eq.curTick(); });
    eq.run();
    EXPECT_EQ(done, 2500 * tickPerNs);
}

TEST(OramFixedLatency, InitiationIntervalSerializes)
{
    EventQueue eq;
    statistics::Group stats("test", nullptr);
    BackingStore store(1ull << 30);
    OramFixedLatency::Params params;
    OramFixedLatency oram("oram", eq, &stats, params, store);
    std::vector<Tick> done;
    for (int i = 0; i < 3; ++i) {
        MemPacket pkt;
        pkt.cmd = MemCmd::Read;
        pkt.addr = 0x1000 + i * 64;
        oram.access(std::move(pkt),
                    [&](MemPacket &&) { done.push_back(eq.curTick()); });
    }
    eq.run();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[1] - done[0], params.initiationInterval);
    EXPECT_EQ(done[2] - done[1], params.initiationInterval);
}

TEST(OramFixedLatency, AccountsPathTraffic)
{
    EventQueue eq;
    statistics::Group stats("test", nullptr);
    BackingStore store(1ull << 30);
    OramFixedLatency oram("oram", eq, &stats,
                          OramFixedLatency::Params{}, store);
    for (int i = 0; i < 5; ++i) {
        MemPacket pkt;
        pkt.cmd = i % 2 ? MemCmd::Write : MemCmd::Read;
        pkt.addr = i * 64;
        oram.access(std::move(pkt), [](MemPacket &&) {});
    }
    eq.run();
    EXPECT_EQ(oram.accessCount(), 5u);
    // 100 blocks read + 100 written per access, reads and writes
    // alike (the source of ORAM's ~100x write amplification).
    EXPECT_EQ(oram.blocksRead(), 5 * oram.pathBlocks());
    EXPECT_EQ(oram.blocksWritten(), 5 * oram.pathBlocks());
}

TEST(OramFixedLatency, FunctionalReadWrite)
{
    EventQueue eq;
    statistics::Group stats("test", nullptr);
    BackingStore store(1ull << 30);
    OramFixedLatency oram("oram", eq, &stats,
                          OramFixedLatency::Params{}, store);
    DataBlock data{};
    data[5] = 0x99;
    MemPacket wr;
    wr.cmd = MemCmd::Write;
    wr.addr = 0x2000;
    wr.data = data;
    oram.access(std::move(wr), [](MemPacket &&) {});
    DataBlock out{};
    MemPacket rd;
    rd.cmd = MemCmd::Read;
    rd.addr = 0x2000;
    oram.access(std::move(rd),
                [&out](MemPacket &&resp) { out = resp.data; });
    eq.run();
    EXPECT_EQ(out, data);
}

TEST(OramDetailed, DrivesRealMemoryTraffic)
{
    SystemConfig cfg;
    cfg.mode = ProtectionMode::OramDetailed;
    cfg.benchmark = "milc";
    cfg.cores = 1;
    cfg.instrPerCore = 2000;
    cfg.oramDetailed.oram.levels = 14;
    cfg.oramDetailed.oram.stashLimit = 500;
    System sys(cfg);
    auto result = sys.run();
    EXPECT_GT(result.instructions, 0u);

    OramDetailed *oram = sys.oramDetailed();
    ASSERT_NE(oram, nullptr);
    uint64_t accesses = oram->oram().accesses();
    EXPECT_GT(accesses, 0u);
    // Every access moves a full path down and back.
    EXPECT_EQ(oram->blocksTransferred(),
              2 * accesses * oram->oram().pathBlocks());
    EXPECT_TRUE(oram->oram().checkInvariant());
}

TEST(OramDetailed, MuchSlowerThanObfusMem)
{
    SystemConfig cfg;
    cfg.benchmark = "milc";
    cfg.cores = 1;
    cfg.instrPerCore = 2000;

    cfg.mode = ProtectionMode::ObfusMemAuth;
    System obfus(cfg);
    auto obfus_result = obfus.run();

    cfg.mode = ProtectionMode::OramDetailed;
    cfg.oramDetailed.oram.levels = 14;
    cfg.oramDetailed.oram.stashLimit = 500;
    System oram(cfg);
    auto oram_result = oram.run();

    EXPECT_GT(oram_result.execTicks, 2 * obfus_result.execTicks);
}
