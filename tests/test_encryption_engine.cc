/**
 * @file
 * Memory-encryption engine tests: functional encryption, counter
 * cache traffic, Merkle integration, and tamper detection.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "secure/encryption_engine.hh"

using namespace obfusmem;

namespace {

constexpr uint64_t GB = 1ull << 30;

/** Inner sink recording all packets with a functional store. */
class RecordingMemory : public MemSink
{
  public:
    RecordingMemory(EventQueue &eq, Tick latency = 100 * tickPerNs)
        : eq(eq), latency(latency)
    {}

    void
    access(MemPacket pkt, PacketCallback cb) override
    {
        log.push_back({pkt.cmd, pkt.addr});
        if (pkt.isWrite())
            contents[pkt.addr] = pkt.data;
        eq.scheduleAfter(latency,
            [this, pkt = std::move(pkt),
             cb = std::move(cb)]() mutable {
                if (pkt.isRead()) {
                    auto it = contents.find(pkt.addr);
                    if (it != contents.end())
                        pkt.data = it->second;
                }
                cb(std::move(pkt));
            });
    }

    uint64_t
    countIn(uint64_t lo, uint64_t hi, MemCmd cmd) const
    {
        uint64_t n = 0;
        for (const auto &[c, a] : log) {
            if (c == cmd && a >= lo && a < hi)
                ++n;
        }
        return n;
    }

    EventQueue &eq;
    Tick latency;
    std::vector<std::pair<MemCmd, uint64_t>> log;
    std::map<uint64_t, DataBlock> contents;
};

class EngineFixture : public ::testing::Test
{
  protected:
    static constexpr uint64_t dataBytes = 1 * GB;
    static constexpr uint64_t ctrBase = 2 * GB;
    static constexpr uint64_t bmtBase = 3 * GB;

    EngineFixture() : stats("test", nullptr), mem(eq) {}

    void
    makeEngine(bool integrity)
    {
        EncryptionParams params;
        params.integrity = integrity;
        crypto::Aes128::Key key{};
        key[0] = 0x42;
        engine = std::make_unique<MemoryEncryptionEngine>(
            "enc", eq, &stats, params, mem, dataBytes, ctrBase,
            bmtBase, key);
    }

    void
    write(uint64_t addr, const DataBlock &data)
    {
        MemPacket pkt;
        pkt.cmd = MemCmd::Write;
        pkt.addr = addr;
        pkt.data = data;
        engine->access(std::move(pkt), [](MemPacket &&) {});
        eq.run();
    }

    DataBlock
    read(uint64_t addr)
    {
        DataBlock out{};
        MemPacket pkt;
        pkt.cmd = MemCmd::Read;
        pkt.addr = addr;
        engine->access(std::move(pkt),
                       [&out](MemPacket &&resp) { out = resp.data; });
        eq.run();
        return out;
    }

    EventQueue eq;
    statistics::Group stats;
    RecordingMemory mem;
    std::unique_ptr<MemoryEncryptionEngine> engine;
};

} // namespace

TEST_F(EngineFixture, WriteReadRoundTrip)
{
    makeEngine(false);
    DataBlock data;
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 3);
    write(0x1000, data);
    EXPECT_EQ(read(0x1000), data);
}

TEST_F(EngineFixture, CiphertextAtRestDiffersFromPlaintext)
{
    makeEngine(false);
    DataBlock data{};
    data[0] = 0xaa;
    write(0x1000, data);
    ASSERT_TRUE(mem.contents.count(0x1000));
    EXPECT_NE(mem.contents[0x1000], data);
}

TEST_F(EngineFixture, SameDataDifferentCiphertextAfterRewrite)
{
    // Counter-mode freshness: rewriting identical data yields a
    // different ciphertext (minor counter bumped).
    makeEngine(false);
    DataBlock data{};
    data[0] = 0x55;
    write(0x1000, data);
    DataBlock first = mem.contents[0x1000];
    write(0x1000, data);
    DataBlock second = mem.contents[0x1000];
    EXPECT_NE(first, second);
    EXPECT_EQ(read(0x1000), data);
}

TEST_F(EngineFixture, DifferentBlocksDifferentPads)
{
    makeEngine(false);
    DataBlock zeros{};
    write(0x0, zeros);
    write(0x40, zeros);
    EXPECT_NE(mem.contents[0x0], mem.contents[0x40]);
}

TEST_F(EngineFixture, CounterFetchTrafficOnMiss)
{
    makeEngine(false);
    read(0x100000);
    // One data read + one counter-block read.
    EXPECT_EQ(mem.countIn(0, dataBytes, MemCmd::Read), 1u);
    EXPECT_EQ(mem.countIn(ctrBase, bmtBase, MemCmd::Read), 1u);
}

TEST_F(EngineFixture, CounterCacheHitAvoidsTraffic)
{
    makeEngine(false);
    read(0x100000);
    uint64_t ctr_reads = mem.countIn(ctrBase, bmtBase, MemCmd::Read);
    read(0x100040); // same 4 KB page -> same counter block
    EXPECT_EQ(mem.countIn(ctrBase, bmtBase, MemCmd::Read), ctr_reads);
}

TEST_F(EngineFixture, ConcurrentMissesShareCounterFetch)
{
    makeEngine(false);
    int done = 0;
    for (int i = 0; i < 4; ++i) {
        MemPacket pkt;
        pkt.cmd = MemCmd::Read;
        pkt.addr = 0x200000 + i * 64;
        engine->access(std::move(pkt),
                       [&done](MemPacket &&) { ++done; });
    }
    eq.run();
    EXPECT_EQ(done, 4);
    EXPECT_EQ(mem.countIn(ctrBase, bmtBase, MemCmd::Read), 1u);
}

TEST_F(EngineFixture, BmtTrafficOnlyWithIntegrity)
{
    makeEngine(false);
    read(0x300000);
    EXPECT_EQ(mem.countIn(bmtBase, 4 * GB, MemCmd::Read), 0u);

    makeEngine(true);
    read(0x310000);
    EXPECT_GE(mem.countIn(bmtBase, 4 * GB, MemCmd::Read), 1u);
}

TEST_F(EngineFixture, TamperedCounterDetected)
{
    makeEngine(true);
    DataBlock data{};
    write(0x400000, data);
    EXPECT_EQ(engine->integrityViolationCount(), 0u);

    // Evict the (dirty) counter block so it is written back to
    // memory and the Merkle tree covers it: read far-away pages
    // until the 4096-entry counter cache wraps.
    for (uint64_t p = 0; p < 5000; ++p)
        read(0x10000000 + p * 4096);
    EXPECT_EQ(engine->integrityViolationCount(), 0u);

    // Now the attacker flips bits in the counter *storage*; the
    // next fetch must fail verification against the on-chip root.
    engine->tamperCounter(0x400000);
    read(0x400000);
    EXPECT_GE(engine->integrityViolationCount(), 1u);
}

TEST_F(EngineFixture, RacingReadSeesInflightWrite)
{
    makeEngine(false);
    DataBlock data{};
    data[7] = 0x77;
    MemPacket wr;
    wr.cmd = MemCmd::Write;
    wr.addr = 0x500000;
    wr.data = data;
    engine->access(std::move(wr), [](MemPacket &&) {});
    // Read before the write drains.
    DataBlock out{};
    MemPacket rd;
    rd.cmd = MemCmd::Read;
    rd.addr = 0x500000;
    engine->access(std::move(rd),
                   [&out](MemPacket &&resp) { out = resp.data; });
    eq.run();
    EXPECT_EQ(out[7], 0x77);
}

TEST_F(EngineFixture, DebugDecryptMatchesStoredCiphertext)
{
    makeEngine(false);
    DataBlock data{};
    data[3] = 0x33;
    write(0x600000, data);
    DataBlock cipher = mem.contents[0x600000];
    EXPECT_EQ(engine->debugDecrypt(0x600000, cipher), data);
    EXPECT_EQ(engine->debugEncrypt(0x600000, data), cipher);
}

TEST_F(EngineFixture, DirtyCounterEvictionsWriteBack)
{
    makeEngine(false);
    // Dirty many counter blocks (one write per page), then overflow
    // the 4096-entry counter cache.
    DataBlock data{};
    for (uint64_t p = 0; p < 5000; ++p)
        write(0x1000000 + p * 4096, data);
    EXPECT_GE(mem.countIn(ctrBase, bmtBase, MemCmd::Write), 1u);
}
