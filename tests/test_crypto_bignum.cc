/**
 * @file
 * BigUint tests: arithmetic identities against 64-bit references,
 * division invariants, modular arithmetic, and primality testing.
 */

#include <gtest/gtest.h>

#include "crypto/bignum.hh"
#include "util/random.hh"

using namespace obfusmem;
using namespace obfusmem::crypto;

TEST(BigUint, SmallValueRoundTrip)
{
    EXPECT_EQ(BigUint(0).toU64(), 0u);
    EXPECT_EQ(BigUint(1).toU64(), 1u);
    EXPECT_EQ(BigUint(0xdeadbeefcafebabeULL).toU64(),
              0xdeadbeefcafebabeULL);
    EXPECT_TRUE(BigUint(0).isZero());
    EXPECT_FALSE(BigUint(1).isZero());
}

TEST(BigUint, HexRoundTrip)
{
    const std::string hex =
        "123456789abcdef0fedcba9876543210deadbeef";
    EXPECT_EQ(BigUint::fromHex(hex).toHex(), hex);
    EXPECT_EQ(BigUint::fromHex("0").toHex(), "0");
    EXPECT_EQ(BigUint::fromHex("00ff").toHex(), "ff");
}

TEST(BigUint, BytesRoundTrip)
{
    uint8_t data[] = {0x12, 0x34, 0x56, 0x78, 0x9a};
    BigUint v = BigUint::fromBytes(data, sizeof(data));
    EXPECT_EQ(v.toHex(), "123456789a");
    auto bytes = v.toBytes();
    ASSERT_EQ(bytes.size(), sizeof(data));
    EXPECT_EQ(memcmp(bytes.data(), data, sizeof(data)), 0);

    auto padded = v.toBytes(8);
    EXPECT_EQ(padded.size(), 8u);
    EXPECT_EQ(padded[0], 0);
    EXPECT_EQ(padded[3], 0x12);
}

TEST(BigUint, BitLength)
{
    EXPECT_EQ(BigUint(0).bitLength(), 0u);
    EXPECT_EQ(BigUint(1).bitLength(), 1u);
    EXPECT_EQ(BigUint(255).bitLength(), 8u);
    EXPECT_EQ(BigUint(256).bitLength(), 9u);
    EXPECT_EQ((BigUint(1) << 100).bitLength(), 101u);
}

TEST(BigUint, ComparisonOperators)
{
    BigUint a(5), b(7);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(a <= a);
    EXPECT_TRUE(a >= a);
    EXPECT_TRUE(a == a);
    EXPECT_TRUE(a != b);
    EXPECT_TRUE(BigUint(1) << 64 > BigUint(UINT64_MAX));
}

TEST(BigUint, AddSubAgainstU64)
{
    Random rng(1);
    for (int i = 0; i < 200; ++i) {
        uint64_t a = rng.next() >> 1;
        uint64_t b = rng.next() >> 1;
        EXPECT_EQ((BigUint(a) + BigUint(b)).toU64(), a + b);
        uint64_t hi = std::max(a, b), lo = std::min(a, b);
        EXPECT_EQ((BigUint(hi) - BigUint(lo)).toU64(), hi - lo);
    }
}

TEST(BigUint, AdditionCarriesAcrossLimbs)
{
    BigUint max32(0xffffffffULL);
    EXPECT_EQ((max32 + BigUint(1)).toHex(), "100000000");
    BigUint big = BigUint::fromHex("ffffffffffffffffffffffff");
    EXPECT_EQ((big + BigUint(1)).toHex(), "1000000000000000000000000");
}

TEST(BigUint, MulAgainstU64)
{
    Random rng(2);
    for (int i = 0; i < 200; ++i) {
        uint64_t a = rng.next() >> 33;
        uint64_t b = rng.next() >> 33;
        EXPECT_EQ((BigUint(a) * BigUint(b)).toU64(), a * b);
    }
}

TEST(BigUint, MulDistributesOverAdd)
{
    Random rng(3);
    for (int i = 0; i < 50; ++i) {
        BigUint a = BigUint::randomBits(100, rng);
        BigUint b = BigUint::randomBits(90, rng);
        BigUint c = BigUint::randomBits(80, rng);
        EXPECT_EQ(a * (b + c), a * b + a * c);
    }
}

TEST(BigUint, ShiftsInvertEachOther)
{
    Random rng(4);
    for (size_t shift : {1u, 7u, 31u, 32u, 33u, 64u, 100u}) {
        BigUint v = BigUint::randomBits(120, rng);
        EXPECT_EQ((v << shift) >> shift, v) << shift;
    }
}

TEST(BigUint, ShiftIsMultiplication)
{
    BigUint v(3);
    EXPECT_EQ(v << 5, BigUint(96));
    EXPECT_EQ(BigUint(96) >> 5, BigUint(3));
    EXPECT_EQ(BigUint(97) >> 5, BigUint(3)); // floor
}

class BigUintDivMod : public ::testing::TestWithParam<int>
{
};

TEST_P(BigUintDivMod, QuotientRemainderInvariant)
{
    Random rng(100 + GetParam());
    size_t num_bits = 32 + (GetParam() * 37) % 480;
    size_t den_bits = 1 + (GetParam() * 17) % num_bits;
    for (int i = 0; i < 40; ++i) {
        BigUint n = BigUint::randomBits(num_bits, rng);
        BigUint d = BigUint::randomBits(den_bits, rng);
        auto [q, r] = n.divmod(d);
        EXPECT_EQ(q * d + r, n);
        EXPECT_TRUE(r < d);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BigUintDivMod,
                         ::testing::Range(0, 12));

TEST(BigUint, DivModEdgeCases)
{
    auto [q1, r1] = BigUint(5).divmod(BigUint(7));
    EXPECT_TRUE(q1.isZero());
    EXPECT_EQ(r1, BigUint(5));

    auto [q2, r2] = BigUint(42).divmod(BigUint(42));
    EXPECT_EQ(q2, BigUint(1));
    EXPECT_TRUE(r2.isZero());

    // Knuth add-back corner: divisor just above half the base.
    BigUint n = BigUint::fromHex("80000000000000000000000000000000");
    BigUint d = BigUint::fromHex("800000000000000000000001");
    auto [q3, r3] = n.divmod(d);
    EXPECT_EQ(q3 * d + r3, n);
    EXPECT_TRUE(r3 < d);
}

TEST(BigUint, PowModAgainstNaive)
{
    Random rng(5);
    for (int i = 0; i < 30; ++i) {
        uint64_t base = rng.randUnder(1000) + 2;
        uint64_t exp = rng.randUnder(20);
        uint64_t mod = rng.randUnder(100000) + 2;
        uint64_t expected = 1;
        for (uint64_t k = 0; k < exp; ++k)
            expected = (expected * base) % mod;
        EXPECT_EQ(BigUint(base).powMod(BigUint(exp),
                                       BigUint(mod)).toU64(),
                  expected);
    }
}

TEST(BigUint, PowModFermat)
{
    // Fermat's little theorem: a^(p-1) = 1 mod p for prime p.
    BigUint p = BigUint::fromHex(
        "7fffffffffffffffffffffffffffffff"
        "ffffffffffffffffffffffffffffffed"); // 2^255 - 19
    Random rng(6);
    for (int i = 0; i < 5; ++i) {
        BigUint a = BigUint::randomBits(128, rng);
        EXPECT_EQ(a.powMod(p - BigUint(1), p), BigUint(1));
    }
}

TEST(BigUint, PowModCtMatchesPowMod)
{
    // The Montgomery ladder must compute the same function as
    // square-and-multiply; only the access pattern differs.
    Random rng(11);
    for (int i = 0; i < 20; ++i) {
        BigUint base = BigUint::randomBits(96, rng);
        BigUint exp = BigUint::randomBits(64, rng);
        BigUint mod = BigUint::randomBits(80, rng);
        if (mod.isZero())
            mod = BigUint(97);
        EXPECT_EQ(base.powModCt(exp, mod, 64), base.powMod(exp, mod))
            << "iteration " << i;
    }
}

TEST(BigUint, PowModCtPadsToPublicBound)
{
    // Trip count is the public bound, not the exponent's bit length:
    // a small exponent under a wide bound must still be correct.
    BigUint base(7), mod(1000003);
    EXPECT_EQ(base.powModCt(BigUint(0), mod, 256), BigUint(1));
    EXPECT_EQ(base.powModCt(BigUint(1), mod, 256), base);
    EXPECT_EQ(base.powModCt(BigUint(2), mod, 256), BigUint(49));
    EXPECT_EQ(BigUint(0).powModCt(BigUint(5), mod, 256), BigUint());
}

TEST(BigUint, PowModCtFermat)
{
    BigUint p = BigUint::fromHex(
        "7fffffffffffffffffffffffffffffff"
        "ffffffffffffffffffffffffffffffed"); // 2^255 - 19
    Random rng(12);
    for (int i = 0; i < 3; ++i) {
        BigUint a = BigUint::randomBits(128, rng);
        EXPECT_EQ(a.powModCt(p - BigUint(1), p, 255), BigUint(1));
    }
}

TEST(BigUint, PowModCtModulusOne)
{
    EXPECT_EQ(BigUint(42).powModCt(BigUint(3), BigUint(1), 8),
              BigUint());
}

TEST(BigUintDeathTest, PowModCtRejectsExponentOverBound)
{
    // An exponent wider than its declared public bound means the
    // bound was wrong; silently truncating it would be a key bug.
    BigUint base(3), mod(1000003);
    EXPECT_DEATH((void)base.powModCt(BigUint(256), mod, 8),
                 "wider than its public bound");
}

TEST(BigUint, Gcd)
{
    EXPECT_EQ(BigUint::gcd(BigUint(12), BigUint(18)), BigUint(6));
    EXPECT_EQ(BigUint::gcd(BigUint(17), BigUint(13)), BigUint(1));
    EXPECT_EQ(BigUint::gcd(BigUint(0), BigUint(5)), BigUint(5));
    EXPECT_EQ(BigUint::gcd(BigUint(5), BigUint(0)), BigUint(5));
}

TEST(BigUint, ModInverse)
{
    Random rng(7);
    BigUint m(1000003); // prime modulus
    for (int i = 0; i < 30; ++i) {
        BigUint a(rng.randUnder(1000002) + 1);
        BigUint inv = BigUint::modInverse(a, m);
        EXPECT_EQ(a.mulMod(inv, m), BigUint(1));
    }
}

TEST(BigUint, MillerRabinKnownPrimes)
{
    Random rng(8);
    for (uint64_t p : {2ull, 3ull, 5ull, 101ull, 7919ull,
                       2147483647ull /* 2^31-1 */}) {
        EXPECT_TRUE(BigUint::isProbablePrime(BigUint(p), rng)) << p;
    }
    // 2^255 - 19 is prime (the testGroup256 modulus relies on this).
    EXPECT_TRUE(BigUint::isProbablePrime(
        BigUint::fromHex("7fffffffffffffffffffffffffffffff"
                         "ffffffffffffffffffffffffffffffed"),
        rng));
}

TEST(BigUint, MillerRabinKnownComposites)
{
    Random rng(9);
    for (uint64_t c : {1ull, 4ull, 100ull, 561ull /* Carmichael */,
                       41041ull /* Carmichael */, 7917ull}) {
        EXPECT_FALSE(BigUint::isProbablePrime(BigUint(c), rng)) << c;
    }
}

TEST(BigUint, GeneratePrimeHasRequestedSize)
{
    Random rng(10);
    for (size_t bits : {16u, 32u, 64u, 128u}) {
        BigUint p = BigUint::generatePrime(bits, rng);
        EXPECT_EQ(p.bitLength(), bits);
        EXPECT_TRUE(BigUint::isProbablePrime(p, rng));
    }
}

TEST(BigUint, RandomBelowIsBelow)
{
    Random rng(11);
    BigUint bound = BigUint::fromHex("123456789abcdef0");
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(BigUint::randomBelow(bound, rng) < bound);
}

TEST(BigUint, RandomBitsTopBitSet)
{
    Random rng(12);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(BigUint::randomBits(77, rng).bitLength(), 77u);
}
