/**
 * @file
 * Cross-backend conformance suite: every ObliviousBackend
 * implementation must (a) return the data written through it, checked
 * against a reference flat store under randomized traffic, (b) keep
 * its structural invariants, (c) checkpoint/restore through the
 * serialize vtable half, and (d) produce bit-identical wire traces
 * whether the bench runner uses 1 or 4 worker threads and whichever
 * event-queue backend is configured.
 *
 * A CI backend-matrix leg can narrow the parameterized sweep to one
 * backend by setting OBFUSMEM_BACKEND; the other parameterizations
 * then skip.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "runner/sweep.hh"
#include "system/system.hh"
#include "system/topology.hh"
#include "util/random.hh"

using namespace obfusmem;

namespace {

/** Logical test window: block ids [0, kWindowBlocks). */
constexpr uint64_t kWindowBlocks = 256;

SystemConfig
smallConfig(ProtectionMode mode)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.buildCores = false;
    // Small functional geometries so the suite stays fast while the
    // window still fits every structure without aliasing:
    // levels=8 holds ~1022 blocks, the write-only structures 1024.
    cfg.oramDetailed.oram.levels = 8;
    cfg.oramDetailed.oram.stashLimit = 1000;
    cfg.flatOram.oram.capacityBlocks = 1 << 10;
    cfg.writeOnlyOram.oram.capacityBlocks = 1 << 10;
    return cfg;
}

DataBlock
writeTimed(System &sys, uint64_t addr, const DataBlock &data)
{
    MemPacket pkt;
    pkt.cmd = MemCmd::Write;
    pkt.addr = addr;
    pkt.data = data;
    pkt.coreId = -1;
    pkt.issueTick = sys.eventQueue().curTick();
    bool done = false;
    sys.memorySink().access(std::move(pkt),
                            [&done](MemPacket &&) { done = true; });
    sys.eventQueue().run();
    EXPECT_TRUE(done) << "write to " << addr << " never completed";
    return data;
}

DataBlock
readTimed(System &sys, uint64_t addr)
{
    MemPacket pkt;
    pkt.cmd = MemCmd::Read;
    pkt.addr = addr;
    pkt.coreId = -1;
    pkt.issueTick = sys.eventQueue().curTick();
    DataBlock out{};
    bool done = false;
    sys.memorySink().access(std::move(pkt),
                            [&out, &done](MemPacket &&resp) {
                                out = resp.data;
                                done = true;
                            });
    sys.eventQueue().run();
    EXPECT_TRUE(done) << "read of " << addr << " never completed";
    return out;
}

/**
 * A fixed deterministic op sequence (used by the trace-identity
 * tests, where the two runs must issue the same logical traffic).
 */
void
runFixedSequence(System &sys)
{
    Random rng(77);
    for (int op = 0; op < 120; ++op) {
        uint64_t addr =
            rng.randUnder(kWindowBlocks) * blockBytes;
        if (rng.chance(0.5)) {
            DataBlock d;
            rng.fillBytes(d.data(), d.size());
            writeTimed(sys, addr, d);
        } else {
            readTimed(sys, addr);
        }
    }
}

/** Wire trace of the fixed sequence under the given configuration. */
std::string
traceOfFixedSequence(SystemConfig cfg)
{
    System sys(cfg);
    WireTraceRecorder rec;
    for (auto &bus : sys.channelBuses())
        bus->attachProbe(&rec);
    runFixedSequence(sys);
    return rec.text();
}

void
checkStructuralInvariants(System &sys)
{
    if (auto *detailed = sys.oramDetailed()) {
        EXPECT_TRUE(detailed->oram().checkInvariant());
    }
    if (auto *flat = sys.flatOramCtl()) {
        EXPECT_TRUE(flat->oram().checkInvariant());
    }
    if (auto *wo = sys.writeOnlyOramCtl()) {
        EXPECT_TRUE(wo->oram().checkInvariant());
    }
    if (auto *auditor = sys.auditor()) {
        EXPECT_EQ(auditor->totalViolations(), 0u);
    }
}

class BackendConformance
    : public ::testing::TestWithParam<ProtectionMode>
{
  protected:
    void SetUp() override
    {
        // Honor the CI backend-matrix knob: when OBFUSMEM_BACKEND
        // names one backend, only its parameterization runs.
        const char *only = std::getenv("OBFUSMEM_BACKEND");
        if (only && *only) {
            const ObliviousBackendInfo *info =
                backendInfoByName(only);
            if (info && info->mode != GetParam())
                GTEST_SKIP() << "OBFUSMEM_BACKEND narrows suite to "
                             << info->name;
        }
    }
};

} // namespace

TEST_P(BackendConformance, RandomizedTrafficMatchesReferenceStore)
{
    System sys(smallConfig(GetParam()));
    Random rng(11);
    std::map<uint64_t, DataBlock> reference;

    for (int op = 0; op < 400; ++op) {
        uint64_t addr =
            rng.randUnder(kWindowBlocks) * blockBytes;
        if (rng.chance(0.5)) {
            DataBlock d;
            rng.fillBytes(d.data(), d.size());
            writeTimed(sys, addr, d);
            reference[addr] = d;
        } else if (reference.count(addr)) {
            ASSERT_EQ(readTimed(sys, addr), reference[addr])
                << "op " << op << " addr " << addr;
        }
    }

    // Everything written is also visible through the functional
    // (untimed, decrypting) path.
    for (const auto &[addr, data] : reference)
        EXPECT_EQ(sys.functionalRead(addr), data)
            << "addr " << addr;

    checkStructuralInvariants(sys);
}

TEST_P(BackendConformance, SerializeRestoreRoundTrip)
{
    SystemConfig cfg = smallConfig(GetParam());
    System a(cfg);
    Random rng(13);
    std::map<uint64_t, DataBlock> reference;
    for (int op = 0; op < 200; ++op) {
        uint64_t addr =
            rng.randUnder(kWindowBlocks) * blockBytes;
        DataBlock d;
        rng.fillBytes(d.data(), d.size());
        writeTimed(a, addr, d);
        reference[addr] = d;
    }

    std::stringstream snap;
    a.serializeBackend(snap);
    System b(cfg);
    ASSERT_TRUE(b.restoreBackend(snap));

    // Backends whose functional state lives in the scheme itself
    // (the ORAM structures) must resolve every block identically
    // after restore. The others keep their data in the backing store
    // (possibly encrypted in place), outside this interface: they
    // restore only their format tag, and checkpointing them means
    // checkpointing the substrate, not the backend.
    const bool self_contained =
        a.oramDetailed() || a.flatOramCtl() || a.writeOnlyOramCtl();
    if (self_contained) {
        for (const auto &[addr, data] : reference) {
            auto restored = b.backend().functionalRead(addr);
            ASSERT_TRUE(restored.has_value());
            EXPECT_EQ(*restored, data) << "addr " << addr;
        }
    }

    // The restored system keeps serving timed traffic correctly.
    DataBlock fresh;
    for (size_t i = 0; i < fresh.size(); ++i)
        fresh[i] = static_cast<uint8_t>(0xa5 ^ i);
    writeTimed(b, 3 * blockBytes, fresh);
    EXPECT_EQ(readTimed(b, 3 * blockBytes), fresh);
    checkStructuralInvariants(b);

    // A snapshot from one mode does not restore into another.
    SystemConfig other_cfg = smallConfig(
        GetParam() == ProtectionMode::Unprotected
            ? ProtectionMode::EncryptionOnly
            : ProtectionMode::Unprotected);
    System c(other_cfg);
    std::stringstream snap2;
    a.serializeBackend(snap2);
    EXPECT_FALSE(c.restoreBackend(snap2));
}

TEST_P(BackendConformance, WireTraceIdenticalAcrossEvqBackends)
{
    SystemConfig cfg = smallConfig(GetParam());
    if (!backendInfo(cfg.mode).needsBuses)
        GTEST_SKIP() << "backend models latency without buses";

    cfg.evqImpl = EvqImpl::Wheel;
    std::string wheel = traceOfFixedSequence(cfg);
    cfg.evqImpl = EvqImpl::Heap;
    std::string heap = traceOfFixedSequence(cfg);

    EXPECT_FALSE(wheel.empty());
    EXPECT_EQ(wheel, heap);
}

TEST_P(BackendConformance, WireTraceIdenticalAcrossBenchJobs)
{
    SystemConfig cfg = smallConfig(GetParam());
    if (!backendInfo(cfg.mode).needsBuses)
        GTEST_SKIP() << "backend models latency without buses";

    // The bench runner's parallel map must not perturb simulated
    // behavior: each index builds an isolated System, so the traces
    // are bit-identical whether 1 or 4 worker threads execute them.
    auto run = [&cfg](size_t) { return traceOfFixedSequence(cfg); };
    std::vector<std::string> serial =
        runner::parallelIndexMap(4, 1, run);
    std::vector<std::string> threaded =
        runner::parallelIndexMap(4, 4, run);

    ASSERT_EQ(serial.size(), threaded.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].empty());
        EXPECT_EQ(serial[i], threaded[i]) << "index " << i;
    }
    EXPECT_EQ(serial[0], serial[3]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BackendConformance,
    ::testing::Values(ProtectionMode::Unprotected,
                      ProtectionMode::EncryptionOnly,
                      ProtectionMode::ObfusMem,
                      ProtectionMode::ObfusMemAuth,
                      ProtectionMode::OramFixed,
                      ProtectionMode::OramDetailed,
                      ProtectionMode::FlatOram,
                      ProtectionMode::WriteOnlyOram),
    [](const ::testing::TestParamInfo<ProtectionMode> &info) {
        std::string name = protectionModeName(info.param);
        for (char &c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

TEST(BackendSelection, EnvKnobSelectsBackend)
{
    const char *saved = std::getenv("OBFUSMEM_BACKEND");
    std::string saved_value = saved ? saved : "";

    setenv("OBFUSMEM_BACKEND", "flat-oram", 1);
    EXPECT_EQ(protectionModeFromEnv(ProtectionMode::Unprotected),
              ProtectionMode::FlatOram);
    setenv("OBFUSMEM_BACKEND", "write-only-oram", 1);
    EXPECT_EQ(protectionModeFromEnv(ProtectionMode::Unprotected),
              ProtectionMode::WriteOnlyOram);
    setenv("OBFUSMEM_BACKEND", "not-a-backend", 1);
    EXPECT_EQ(protectionModeFromEnv(ProtectionMode::ObfusMemAuth),
              ProtectionMode::ObfusMemAuth);
    unsetenv("OBFUSMEM_BACKEND");
    EXPECT_EQ(protectionModeFromEnv(ProtectionMode::OramFixed),
              ProtectionMode::OramFixed);

    if (!saved_value.empty())
        setenv("OBFUSMEM_BACKEND", saved_value.c_str(), 1);
}
