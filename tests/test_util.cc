/**
 * @file
 * Unit tests for the utility substrate: bit operations, the
 * deterministic PRNG, and the statistics package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/bitops.hh"
#include "util/env.hh"
#include "util/random.hh"
#include "util/stats.hh"

using namespace obfusmem;

TEST(BitOps, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(6));
}

TEST(BitOps, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(BitOps, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitOps, BitsExtraction)
{
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffu);
    EXPECT_EQ(bits(0xdeadbeef, 0, 4), 0xfu);
    EXPECT_EQ(bits(0xdeadbeef, 28, 4), 0xdu);
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
    EXPECT_EQ(bits(0x1234, 4, 0), 0u);
}

TEST(BitOps, Rounding)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundDown(127, 64), 64u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
}

TEST(Random, Deterministic)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Random, RandUnderBounds)
{
    Random rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.randUnder(bound), bound);
    }
}

TEST(Random, RandUnderCoversAllValues)
{
    Random rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.randUnder(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, RandRangeInclusive)
{
    Random rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = rng.randRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, DoubleInUnitInterval)
{
    Random rng(5);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.randDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Random, ChanceEdgeCases)
{
    Random rng(9);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Random, ChanceApproximatesProbability)
{
    Random rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / double(n), 0.3, 0.02);
}

TEST(Random, GeometricMean)
{
    Random rng(17);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.geometric(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Random, GeometricMinimumOne)
{
    Random rng(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.geometric(1.5), 1u);
    EXPECT_EQ(rng.geometric(0.5), 1u);
}

TEST(Random, FillBytesDeterministic)
{
    Random a(23), b(23);
    uint8_t buf1[37], buf2[37];
    a.fillBytes(buf1, sizeof(buf1));
    b.fillBytes(buf2, sizeof(buf2));
    EXPECT_EQ(memcmp(buf1, buf2, sizeof(buf1)), 0);
}

TEST(Stats, ScalarAccumulates)
{
    statistics::Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    s++;
    EXPECT_EQ(s.value(), 4.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Stats, AverageComputes)
{
    statistics::Average a;
    EXPECT_EQ(a.value(), 0.0);
    a.sample(1);
    a.sample(2);
    a.sample(3);
    EXPECT_DOUBLE_EQ(a.value(), 2.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 6.0);
}

TEST(Stats, HistogramBuckets)
{
    statistics::Histogram h(0, 10, 10);
    h.sample(-1); // underflow
    h.sample(0);
    h.sample(5.5);
    h.sample(9.99);
    h.sample(100); // overflow
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[5], 1u);
    EXPECT_EQ(h.buckets()[9], 1u);
    EXPECT_EQ(h.minSample(), -1);
    EXPECT_EQ(h.maxSample(), 100);
}

TEST(Stats, GroupHierarchyAndDump)
{
    statistics::Group root("root", nullptr);
    statistics::Group child("child", &root);
    statistics::Scalar s;
    s += 42;
    child.addScalar("counter", &s, "a counter");
    EXPECT_EQ(child.fullName(), "root.child");

    std::ostringstream oss;
    root.dump(oss);
    EXPECT_NE(oss.str().find("root.child.counter"), std::string::npos);
    EXPECT_NE(oss.str().find("42"), std::string::npos);
    EXPECT_EQ(child.scalarValue("counter"), 42.0);
}

TEST(Stats, HistogramIgnoresNonFiniteForMinMaxAndMean)
{
    statistics::Histogram h(0, 10, 10);
    h.sample(std::numeric_limits<double>::quiet_NaN());
    h.sample(std::numeric_limits<double>::infinity());
    h.sample(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.finiteSamples(), 0u);
    EXPECT_EQ(h.mean(), 0.0);

    h.sample(4.0);
    EXPECT_EQ(h.finiteSamples(), 1u);
    EXPECT_EQ(h.minSample(), 4.0);
    EXPECT_EQ(h.maxSample(), 4.0);
    EXPECT_EQ(h.mean(), 4.0);
}

TEST(Stats, EmptyHistogramDumpsDashForMinMax)
{
    statistics::Group root("root", nullptr);
    statistics::Histogram h(0, 10, 10);
    root.addHistogram("lat", &h, "latency");
    std::ostringstream oss;
    root.dump(oss);
    EXPECT_NE(oss.str().find("root.lat.min"), std::string::npos);
    EXPECT_NE(oss.str().find("-"), std::string::npos);

    h.sample(2.0);
    std::ostringstream oss2;
    root.dump(oss2);
    EXPECT_NE(oss2.str().find("2.00"), std::string::npos);
}

TEST(Env, U64RejectsMalformedValues)
{
    setenv("OBFUSMEM_TEST_KNOB", "123", 1);
    EXPECT_EQ(env::u64("OBFUSMEM_TEST_KNOB", 7), 123u);

    // strtoull would silently accept all of these; the knob parser
    // must warn-and-default instead.
    for (const char *bad :
         {" 42", "+42", "-1", "42x", "", "0x10",
          "99999999999999999999999999"}) {
        setenv("OBFUSMEM_TEST_KNOB", bad, 1);
        EXPECT_EQ(env::u64("OBFUSMEM_TEST_KNOB", 7), 7u) << bad;
    }
    unsetenv("OBFUSMEM_TEST_KNOB");
    EXPECT_EQ(env::u64("OBFUSMEM_TEST_KNOB", 7), 7u);
}

TEST(Env, F64ParsesProbabilitiesAndRejectsJunk)
{
    setenv("OBFUSMEM_TEST_KNOB", "0.125", 1);
    EXPECT_DOUBLE_EQ(env::f64("OBFUSMEM_TEST_KNOB", 0.5), 0.125);
    setenv("OBFUSMEM_TEST_KNOB", ".5", 1);
    EXPECT_DOUBLE_EQ(env::f64("OBFUSMEM_TEST_KNOB", 0.0), 0.5);

    for (const char *bad :
         {" 0.5", "+0.5", "-0.5", "nan", "inf", "0.5x", ""}) {
        setenv("OBFUSMEM_TEST_KNOB", bad, 1);
        EXPECT_DOUBLE_EQ(env::f64("OBFUSMEM_TEST_KNOB", 0.25), 0.25)
            << bad;
    }
    unsetenv("OBFUSMEM_TEST_KNOB");
    EXPECT_DOUBLE_EQ(env::f64("OBFUSMEM_TEST_KNOB", 0.25), 0.25);
}

TEST(Env, JobsParsesAutoDetectAndCap)
{
    setenv("OBFUSMEM_TEST_KNOB", "4", 1);
    EXPECT_EQ(env::jobs("OBFUSMEM_TEST_KNOB", 1), 4u);

    // 0 means one worker per hardware thread (>= 1 on any host).
    setenv("OBFUSMEM_TEST_KNOB", "0", 1);
    EXPECT_GE(env::jobs("OBFUSMEM_TEST_KNOB", 1), 1u);

    // Typo'd huge values clamp instead of spawning thousands.
    setenv("OBFUSMEM_TEST_KNOB", "100000", 1);
    EXPECT_EQ(env::jobs("OBFUSMEM_TEST_KNOB", 1), 256u);
    EXPECT_EQ(env::jobs("OBFUSMEM_TEST_KNOB", 1, 8), 8u);

    // Malformed values fall back to the default, like u64.
    setenv("OBFUSMEM_TEST_KNOB", "many", 1);
    EXPECT_EQ(env::jobs("OBFUSMEM_TEST_KNOB", 3), 3u);

    unsetenv("OBFUSMEM_TEST_KNOB");
    EXPECT_EQ(env::jobs("OBFUSMEM_TEST_KNOB", 2), 2u);
    // An unset knob with a 0 default also auto-detects.
    EXPECT_GE(env::jobs("OBFUSMEM_TEST_KNOB", 0), 1u);
}

TEST(Stats, ShardedScalarMergesLanesInFixedOrder)
{
    statistics::ShardedScalar s;
    s.resize(4);
    for (unsigned lane = 0; lane < 4; ++lane)
        for (unsigned i = 0; i <= lane; ++i)
            s.add(lane);
    EXPECT_EQ(s.value(), 0u); // nothing merged yet
    s.merge();
    EXPECT_EQ(s.value(), 1u + 2u + 3u + 4u);
    // merge() is a snapshot fold, not a drain: folding again without
    // new adds must not double-count.
    s.merge();
    EXPECT_EQ(s.value(), 10u);
    s.add(2, 5);
    s.merge();
    EXPECT_EQ(s.value(), 15u);
}

TEST(Stats, ShardedScalarResizePreservesCounts)
{
    statistics::ShardedScalar s;
    s.resize(2);
    s.add(0, 7);
    s.add(1, 8);
    // Growing the lane set (kernel re-seal) folds existing counts
    // into the base rather than dropping them.
    s.resize(8);
    s.add(7, 5);
    s.merge();
    EXPECT_EQ(s.value(), 20u);
}

TEST(Stats, ShardedScalarIsTSanCleanUnderConcurrentLanes)
{
    // The whole point of the lane layout: concurrent add()s on
    // distinct lanes race on nothing. Run under TSan in CI.
    statistics::ShardedScalar s;
    constexpr unsigned lanes = 4;
    constexpr uint64_t perLane = 50000;
    s.resize(lanes);
    std::vector<std::thread> threads;
    for (unsigned lane = 0; lane < lanes; ++lane) {
        threads.emplace_back([&s, lane]() {
            for (uint64_t i = 0; i < perLane; ++i)
                s.add(lane);
        });
    }
    for (auto &t : threads)
        t.join();
    s.merge();
    EXPECT_EQ(s.value(), lanes * perLane);
}
