/**
 * @file
 * ObfusMem wire format and MAC engine tests.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "obfusmem/mac_engine.hh"
#include "obfusmem/wire_format.hh"
#include "util/random.hh"

using namespace obfusmem;
using namespace obfusmem::crypto;

namespace {

Aes128::Key
testKey()
{
    Aes128::Key key{};
    for (size_t i = 0; i < key.size(); ++i)
        key[i] = static_cast<uint8_t>(i * 11 + 3);
    return key;
}

} // namespace

TEST(WireHeader, PackUnpackRoundTrip)
{
    WireHeader hdr;
    hdr.cmd = MemCmd::Write;
    hdr.addr = 0x123456789abcull;
    hdr.tag = 0xbeef;
    hdr.dummy = true;
    auto parsed = WireHeader::unpack(hdr.pack());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->cmd, MemCmd::Write);
    EXPECT_EQ(parsed->addr, hdr.addr);
    EXPECT_EQ(parsed->tag, hdr.tag);
    EXPECT_TRUE(parsed->dummy);
}

TEST(WireHeader, BadMagicRejected)
{
    WireHeader hdr;
    hdr.addr = 0x1000;
    Block128 packed = hdr.pack();
    packed[11] ^= 0x01; // corrupt magic
    EXPECT_FALSE(WireHeader::unpack(packed).has_value());
}

TEST(WireHeader, RandomBlocksAlmostNeverParse)
{
    Random rng(1);
    int parsed = 0;
    for (int i = 0; i < 1000; ++i) {
        Block128 junk;
        rng.fillBytes(junk.data(), junk.size());
        parsed += WireHeader::unpack(junk).has_value();
    }
    // 16-bit magic + validity bits: parsing junk is ~1 in 2^18.
    EXPECT_LE(parsed, 1);
}

TEST(WireFormat, HeaderEncryptionRoundTrip)
{
    AesCtr cipher(testKey(), 0);
    WireHeader hdr;
    hdr.cmd = MemCmd::Read;
    hdr.addr = 0xdeadbee0;
    hdr.tag = 17;
    Block128 wire = encryptHeader(cipher, 42, hdr);
    auto back = decryptHeader(cipher, 42, wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->addr, hdr.addr);
    EXPECT_EQ(back->tag, hdr.tag);
}

TEST(WireFormat, WrongCounterFailsToDecrypt)
{
    AesCtr cipher(testKey(), 0);
    WireHeader hdr;
    hdr.addr = 0x1000;
    Block128 wire = encryptHeader(cipher, 42, hdr);
    EXPECT_FALSE(decryptHeader(cipher, 43, wire).has_value());
}

TEST(WireFormat, SameHeaderEncryptsDifferentlyEachCounter)
{
    // The heart of temporal-pattern obfuscation: identical requests
    // look different on the wire every time.
    AesCtr cipher(testKey(), 0);
    WireHeader hdr;
    hdr.addr = 0x4000;
    std::set<std::string> wires;
    for (uint64_t ctr = 0; ctr < 100; ++ctr)
        wires.insert(toHex(encryptHeader(cipher, ctr * 6, hdr)));
    EXPECT_EQ(wires.size(), 100u);
}

TEST(WireFormat, PayloadRoundTrip)
{
    AesCtr cipher(testKey(), 5);
    Random rng(2);
    DataBlock data;
    rng.fillBytes(data.data(), data.size());
    DataBlock wire = cryptPayload(cipher, 1000, data);
    EXPECT_NE(wire, data);
    EXPECT_EQ(cryptPayload(cipher, 1000, wire), data);
}

TEST(WireFormat, WireBytesArithmetic)
{
    WireMessage msg;
    EXPECT_EQ(msg.wireBytes(0, 8), 0u);
    EXPECT_EQ(msg.wireBytes(16, 8), 16u);
    msg.hasData = true;
    EXPECT_EQ(msg.wireBytes(0, 8), 64u);
    msg.hasMac = true;
    EXPECT_EQ(msg.wireBytes(0, 8), 72u);
    EXPECT_EQ(msg.wireBytes(16, 16), 96u);
}

TEST(WireFormat, CounterDiscipline)
{
    // Six pads per request group, five per reply (paper Fig. 3).
    EXPECT_EQ(countersPerRequestGroup, 6u);
    EXPECT_EQ(countersPerReply, 5u);
}

TEST(MacEngine, ComputeVerifyRoundTrip)
{
    MacEngine mac(MacEngine::Params{});
    WireHeader hdr;
    hdr.cmd = MemCmd::Write;
    hdr.addr = 0x8000;
    auto tag = mac.compute(hdr, 77);
    EXPECT_TRUE(mac.verify(hdr, 77, tag));
}

TEST(MacEngine, DetectsTypeTamper)
{
    MacEngine mac(MacEngine::Params{});
    WireHeader hdr;
    hdr.cmd = MemCmd::Write;
    hdr.addr = 0x8000;
    auto tag = mac.compute(hdr, 77);
    WireHeader tampered = hdr;
    tampered.cmd = MemCmd::Read;
    EXPECT_FALSE(mac.verify(tampered, 77, tag));
}

TEST(MacEngine, DetectsAddressTamper)
{
    MacEngine mac(MacEngine::Params{});
    WireHeader hdr;
    hdr.addr = 0x8000;
    auto tag = mac.compute(hdr, 77);
    WireHeader tampered = hdr;
    tampered.addr = 0x8040;
    EXPECT_FALSE(mac.verify(tampered, 77, tag));
}

TEST(MacEngine, DetectsCounterSkewFromDropOrReplay)
{
    // A dropped or replayed message shifts the receiver's counter:
    // the recomputed MAC uses a different (fresh) counter value.
    MacEngine mac(MacEngine::Params{});
    WireHeader hdr;
    hdr.addr = 0x8000;
    auto tag = mac.compute(hdr, 77);
    EXPECT_FALSE(mac.verify(hdr, 78, tag)); // drop
    EXPECT_FALSE(mac.verify(hdr, 71, tag)); // replay
}

TEST(MacEngine, EncryptAndMacIsFasterThanEncryptThenMac)
{
    // Observation 4: overlapping MAC generation with encryption
    // keeps it off the critical path.
    MacEngine::Params and_params;
    and_params.mode = MacMode::EncryptAndMac;
    MacEngine::Params then_params;
    then_params.mode = MacMode::EncryptThenMac;
    MacEngine and_mac(and_params), then_mac(then_params);
    EXPECT_LT(and_mac.senderLatency(), then_mac.senderLatency());
    EXPECT_LT(and_mac.receiverLatency(), then_mac.receiverLatency());
    // The serial mode pays the full 64-stage MD5 pipeline.
    EXPECT_EQ(then_mac.senderLatency(), 64 * 4 * tickPerNs);
}

TEST(FrameBatch, SealMatchesScalarBuilders)
{
    // The SoA staging + stage-wise seal must emit frames bit-identical
    // to the per-message builders, with header-only and data frames
    // interleaved in arbitrary order (the payload lanes are dense, so
    // slot bookkeeping has to survive mixing).
    AesCtr cipher(testKey(), 9);
    MacEngine mac(MacEngine::Params{});
    Random rng(77);

    FrameBatch frames;
    std::vector<WireMessage> expect;
    uint64_t ctr = 5000;
    for (int i = 0; i < 23; ++i) {
        WireHeader hdr;
        hdr.cmd = (i % 3 == 1) ? MemCmd::Write : MemCmd::Read;
        hdr.addr = 0x1000u * i;
        hdr.tag = static_cast<uint16_t>(i);
        if (i % 3 == 0) {
            Block128 pad = cipher.pad(ctr);
            frames.stageHeaderFrame(pad, hdr, ctr);
            WireMessage m = makeHeaderMessage(pad, hdr);
            attachMac(m, mac.compute(hdr, ctr));
            expect.push_back(m);
            ctr += 1;
        } else {
            DataBlock payload;
            rng.fillBytes(payload.data(), payload.size());
            Block128 pads[5];
            cipher.genPads(ctr, pads, 5);
            frames.stageDataFrame(pads[0], &pads[1], hdr, payload,
                                  ctr);
            WireMessage m =
                makeDataMessage(pads[0], &pads[1], hdr, payload);
            attachMac(m, mac.compute(hdr, ctr));
            expect.push_back(m);
            ctr += 5;
        }
    }

    const size_t n = frames.size();
    ASSERT_EQ(n, expect.size());
    std::vector<Md5Digest> macs(n);
    mac.computeBatch(frames.headers(), frames.macCounters(),
                     macs.data(), n);
    std::vector<WireMessage> got(n);
    frames.seal(macs.data(), got.data());
    EXPECT_TRUE(frames.empty());

    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i].cipherHeader, expect[i].cipherHeader) << i;
        EXPECT_EQ(got[i].hasData, expect[i].hasData) << i;
        EXPECT_EQ(got[i].cipherData, expect[i].cipherData) << i;
        EXPECT_EQ(got[i].hasMac, expect[i].hasMac) << i;
        EXPECT_EQ(got[i].mac, expect[i].mac) << i;
    }
}

TEST(FrameBatch, SealWithoutMacsLeavesFramesUnauthenticated)
{
    AesCtr cipher(testKey(), 9);
    FrameBatch frames;
    WireHeader hdr;
    hdr.cmd = MemCmd::Read;
    hdr.addr = 0x40;
    Block128 pad = cipher.pad(1);
    frames.stageHeaderFrame(pad, hdr, 1);
    WireMessage got;
    frames.seal(nullptr, &got);
    EXPECT_FALSE(got.hasMac);
    EXPECT_EQ(got.cipherHeader, makeHeaderMessage(pad, hdr).cipherHeader);
}
