/**
 * @file
 * Merkle tree tests: integrity verification over counter storage.
 */

#include <gtest/gtest.h>

#include "crypto/md5.hh"
#include "secure/merkle.hh"

using namespace obfusmem;

namespace {

MerkleTree::Digest
digestOf(const std::string &s)
{
    return crypto::Md5::digest(s);
}

} // namespace

TEST(MerkleTree, FreshLeavesVerifyAgainstDefault)
{
    MerkleTree::Digest fresh = digestOf("fresh");
    MerkleTree tree(64, 4, fresh);
    for (uint64_t leaf : {0ull, 1ull, 33ull, 63ull})
        EXPECT_TRUE(tree.verify(leaf, fresh));
}

TEST(MerkleTree, UpdatedLeafVerifies)
{
    MerkleTree tree(64);
    MerkleTree::Digest d = digestOf("hello");
    tree.update(5, d);
    EXPECT_TRUE(tree.verify(5, d));
}

TEST(MerkleTree, WrongDigestFails)
{
    MerkleTree tree(64);
    tree.update(5, digestOf("hello"));
    EXPECT_FALSE(tree.verify(5, digestOf("world")));
}

TEST(MerkleTree, UpdateChangesRoot)
{
    MerkleTree tree(256);
    MerkleTree::Digest before = tree.root();
    tree.update(100, digestOf("x"));
    MerkleTree::Digest after = tree.root();
    EXPECT_NE(before, after);
    tree.update(100, digestOf("y"));
    EXPECT_NE(tree.root(), after);
}

TEST(MerkleTree, SiblingUpdatesDoNotBreakVerification)
{
    MerkleTree tree(64);
    MerkleTree::Digest a = digestOf("a"), b = digestOf("b");
    tree.update(0, a);
    tree.update(1, b); // same parent bucket
    EXPECT_TRUE(tree.verify(0, a));
    EXPECT_TRUE(tree.verify(1, b));
}

TEST(MerkleTree, TamperedLeafDetected)
{
    MerkleTree tree(64);
    MerkleTree::Digest d = digestOf("data");
    tree.update(7, d);
    tree.tamperLeaf(7);
    // The stored leaf no longer matches the claimed value...
    EXPECT_FALSE(tree.verify(7, d));
}

TEST(MerkleTree, AttackerCannotForgePathWithoutRoot)
{
    // Model an attacker who controls leaf storage: even writing a
    // consistent-looking digest fails because interior nodes (and
    // ultimately the on-chip root) do not match.
    MerkleTree tree(64);
    tree.update(3, digestOf("legit"));
    tree.tamperLeaf(3);
    MerkleTree::Digest tampered = digestOf("legit");
    tampered[0] ^= 0xff;
    EXPECT_FALSE(tree.verify(3, tampered));
}

TEST(MerkleTree, ManyLeavesIndependent)
{
    MerkleTree tree(1024);
    for (uint64_t i = 0; i < 50; ++i)
        tree.update(i * 19 % 1024, digestOf(std::to_string(i)));
    for (uint64_t i = 0; i < 50; ++i) {
        EXPECT_TRUE(
            tree.verify(i * 19 % 1024, digestOf(std::to_string(i))));
    }
}

TEST(MerkleTree, RoundsUpLeafCount)
{
    MerkleTree tree(5, 4);
    EXPECT_GE(tree.leafCount(), 5u);
    EXPECT_EQ(tree.leafCount(), 16u); // next power of 4
}

TEST(MerkleTree, LevelsGrowLogarithmically)
{
    EXPECT_EQ(MerkleTree(1, 4).levels(), 1u);
    EXPECT_EQ(MerkleTree(4, 4).levels(), 2u);
    EXPECT_EQ(MerkleTree(16, 4).levels(), 3u);
    EXPECT_EQ(MerkleTree(1 << 20, 4).levels(), 11u);
}

TEST(MerkleTree, BinaryArityWorks)
{
    MerkleTree tree(8, 2);
    MerkleTree::Digest d = digestOf("bin");
    tree.update(3, d);
    EXPECT_TRUE(tree.verify(3, d));
    EXPECT_FALSE(tree.verify(3, digestOf("other")));
}

TEST(MerkleTree, SparseTreesAreCheap)
{
    // An 8 GB memory's counter space: 2M leaves; creating the tree
    // and touching a handful of leaves must not materialize it all.
    MerkleTree tree(2 * 1024 * 1024);
    tree.update(1234567, digestOf("sparse"));
    EXPECT_TRUE(tree.verify(1234567, digestOf("sparse")));
    EXPECT_TRUE(tree.verify(0, MerkleTree::Digest{}));
}
