/**
 * @file
 * Tests for the parallel sweep runner: thread-pool mechanics,
 * ordered results, and the central invariant that a parallel sweep
 * is bit-identical to a serial one (each job's System is fully
 * self-contained, so thread interleaving must not leak into
 * simulated results).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "system/system.hh"

using namespace obfusmem;
using namespace obfusmem::runner;

TEST(ThreadPool, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ParallelIndexMap, ResultsComeBackInIndexOrder)
{
    for (unsigned jobs : {1u, 2u, 8u}) {
        auto results = parallelIndexMap(
            64, jobs, [](size_t i) { return i * i; });
        ASSERT_EQ(results.size(), 64u);
        for (size_t i = 0; i < results.size(); ++i)
            EXPECT_EQ(results[i], i * i);
    }
}

TEST(ParallelIndexMap, SerialAndParallelAgree)
{
    auto serial = parallelIndexMap(
        33, 1, [](size_t i) { return 3 * i + 1; });
    auto parallel = parallelIndexMap(
        33, 4, [](size_t i) { return 3 * i + 1; });
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelIndexMap, PropagatesExceptions)
{
    auto boom = [](size_t i) -> int {
        if (i == 5)
            throw std::runtime_error("job 5 failed");
        return static_cast<int>(i);
    };
    EXPECT_THROW(parallelIndexMap(10, 4, boom), std::runtime_error);
    EXPECT_THROW(parallelIndexMap(10, 1, boom), std::runtime_error);
}

namespace {

/** Small configs so the determinism sweep stays fast. */
std::vector<SystemConfig>
smallSweepConfigs()
{
    std::vector<SystemConfig> cfgs;
    for (const char *name : {"milc", "sjeng", "hmmer"}) {
        for (ProtectionMode mode :
             {ProtectionMode::Unprotected,
              ProtectionMode::ObfusMemAuth}) {
            SystemConfig cfg;
            cfg.mode = mode;
            cfg.benchmark = name;
            cfg.instrPerCore = 2000;
            cfg.attachObserver = false;
            cfgs.push_back(cfg);
        }
    }
    return cfgs;
}

/** Field-by-field equality: RunResult has no operator==. */
void
expectIdentical(const System::RunResult &a, const System::RunResult &b)
{
    EXPECT_EQ(a.execTicks, b.execTicks);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.avgGapNs, b.avgGapNs);
    EXPECT_EQ(a.cellWrites, b.cellWrites);
    EXPECT_EQ(a.pcmEnergyPj, b.pcmEnergyPj);
    EXPECT_EQ(a.busUtilization, b.busUtilization);
}

} // namespace

TEST(RunSweep, ParallelIsBitIdenticalToSerial)
{
    // The tentpole invariant: OBFUSMEM_BENCH_JOBS changes wall-clock
    // time only, never simulated results.
    const auto cfgs = smallSweepConfigs();
    const auto serial = runSweep(cfgs, 1);
    const auto parallel = runSweep(cfgs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], parallel[i]);
}

TEST(RunSweep, RepeatedParallelRunsAgree)
{
    // No hidden dependence on thread scheduling between runs either.
    const auto cfgs = smallSweepConfigs();
    const auto first = runSweep(cfgs, 3);
    const auto second = runSweep(cfgs, 3);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i)
        expectIdentical(first[i], second[i]);
}
