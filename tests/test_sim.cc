/**
 * @file
 * Simulation kernel tests: event queue ordering, timing, and clock
 * domains.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hh"
#include "sim/event_queue.hh"

using namespace obfusmem;

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&]() { order.push_back(3); });
    eq.schedule(100, [&]() { order.push_back(1); });
    eq.schedule(200, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(50, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&]() {
        eq.scheduleAfter(50, [&]() { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue eq;
    int executed = 0;
    eq.schedule(100, [&]() { ++executed; });
    eq.schedule(200, [&]() { ++executed; });
    uint64_t count = eq.run(150);
    EXPECT_EQ(count, 1u);
    EXPECT_EQ(executed, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(executed, 2);
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue eq;
    int executed = 0;
    eq.schedule(10, [&]() { ++executed; });
    eq.schedule(20, [&]() { ++executed; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(executed, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(executed, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.curTick(), 99u);
    EXPECT_EQ(eq.eventsExecuted(), 100u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, []() {}), "in the past");
}

TEST(ClockDomain, CoreClockIs2GHz)
{
    EXPECT_EQ(coreClock.period(), 500u);
    EXPECT_EQ(coreClock.cyclesToTicks(2), 1000u);
    EXPECT_EQ(coreClock.ticksToCycles(1499), 2u);
}

TEST(ClockDomain, BusClockIs800MHz)
{
    EXPECT_EQ(busClock.period(), 1250u);
}

TEST(ClockDomain, CryptoClockIs4ns)
{
    EXPECT_EQ(cryptoClock.period(), 4000u);
}

TEST(ClockDomain, FromMhz)
{
    EXPECT_EQ(ClockDomain::fromMhz(1000).period(), 1000u);
    EXPECT_EQ(ClockDomain::fromMhz(2000).period(), 500u);
}

TEST(ClockDomain, NextEdgeAligns)
{
    ClockDomain clk(100);
    EXPECT_EQ(clk.nextEdge(0), 0u);
    EXPECT_EQ(clk.nextEdge(1), 100u);
    EXPECT_EQ(clk.nextEdge(100), 100u);
    EXPECT_EQ(clk.nextEdge(101), 200u);
}

TEST(Types, TickConversions)
{
    EXPECT_EQ(tickPerNs, 1000u);
    EXPECT_EQ(tickPerUs, 1000000u);
    EXPECT_DOUBLE_EQ(ticksToNs(2500), 2.5);
}
