/**
 * @file
 * Simulation kernel tests: event queue ordering, timing, the pooled
 * node lifecycle, the timing-wheel/heap equivalence, and clock
 * domains. Every ordering test runs against both queue backends
 * (EvqImpl::Wheel and EvqImpl::Heap) — the two must be bit-identical
 * in execution order for the OBFUSMEM_EVQ_IMPL A/B knob to be a
 * valid cross-check.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include "sim/clock.hh"
#include "sim/event_queue.hh"
#include "sim/inline_callback.hh"

using namespace obfusmem;

namespace {

class EventQueueImplTest : public ::testing::TestWithParam<EvqImpl>
{
};

class EventQueueImplDeathTest : public EventQueueImplTest
{
};

std::string
implName(const ::testing::TestParamInfo<EvqImpl> &info)
{
    return info.param == EvqImpl::Wheel ? "wheel" : "heap";
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Impls, EventQueueImplTest,
                         ::testing::Values(EvqImpl::Wheel, EvqImpl::Heap),
                         implName);
INSTANTIATE_TEST_SUITE_P(Impls, EventQueueImplDeathTest,
                         ::testing::Values(EvqImpl::Wheel, EvqImpl::Heap),
                         implName);

TEST_P(EventQueueImplTest, ExecutesInTimeOrder)
{
    EventQueue eq(GetParam());
    std::vector<int> order;
    eq.schedule(300, [&]() { order.push_back(3); });
    eq.schedule(100, [&]() { order.push_back(1); });
    eq.schedule(200, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST_P(EventQueueImplTest, SameTickIsFifo)
{
    EventQueue eq(GetParam());
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(50, [&order, i]() { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST_P(EventQueueImplTest, ScheduleAfterIsRelative)
{
    EventQueue eq(GetParam());
    Tick seen = 0;
    eq.schedule(100, [&]() {
        eq.scheduleAfter(50, [&]() { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST_P(EventQueueImplTest, RunLimitStopsEarly)
{
    EventQueue eq(GetParam());
    int executed = 0;
    eq.schedule(100, [&]() { ++executed; });
    eq.schedule(200, [&]() { ++executed; });
    uint64_t count = eq.run(150);
    EXPECT_EQ(count, 1u);
    EXPECT_EQ(executed, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(executed, 2);
}

TEST_P(EventQueueImplTest, StepExecutesOne)
{
    EventQueue eq(GetParam());
    int executed = 0;
    eq.schedule(10, [&]() { ++executed; });
    eq.schedule(20, [&]() { ++executed; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(executed, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(executed, 2);
    EXPECT_FALSE(eq.step());
}

TEST_P(EventQueueImplTest, EventsCanScheduleEvents)
{
    EventQueue eq(GetParam());
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.curTick(), 99u);
    EXPECT_EQ(eq.eventsExecuted(), 100u);
}

// Scheduling at curTick() from inside a running callback must execute
// later within the same tick, after events that were already queued
// for that tick, and before any later tick.
TEST_P(EventQueueImplTest, ScheduleAtCurTickInsideCallback)
{
    EventQueue eq(GetParam());
    std::vector<int> order;
    eq.schedule(50, [&]() {
        order.push_back(0);
        eq.schedule(eq.curTick(), [&]() {
            order.push_back(2); // after the pre-queued same-tick event
            EXPECT_EQ(eq.curTick(), 50u);
        });
        eq.scheduleAfter(0, [&]() { order.push_back(3); });
    });
    eq.schedule(50, [&]() { order.push_back(1); });
    eq.schedule(51, [&]() { order.push_back(4); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// run(limit) must leave curTick() == limit even when the queue drains
// before the limit — except for the limit == maxTick "drain" case,
// where time only advances as far as the last executed event.
TEST_P(EventQueueImplTest, RunAdvancesNowToLimit)
{
    EventQueue eq(GetParam());
    int executed = 0;
    eq.schedule(100, [&]() { ++executed; });
    EXPECT_EQ(eq.run(500), 1u);
    EXPECT_EQ(eq.curTick(), 500u);
    // An empty queue still advances to the limit.
    EXPECT_EQ(eq.run(700), 0u);
    EXPECT_EQ(eq.curTick(), 700u);
    // The drain case: now stays at the last event's tick.
    eq.schedule(900, [&]() { ++executed; });
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(eq.curTick(), 900u);
    EXPECT_EQ(executed, 2);
}

// run() returns the number of events executed by *that call* (the
// delta of eventsExecuted()), not a cumulative count.
TEST_P(EventQueueImplTest, RunReturnsExecutedDelta)
{
    EventQueue eq(GetParam());
    for (Tick t : {10u, 20u, 30u})
        eq.schedule(t, []() {});
    EXPECT_EQ(eq.run(), 3u);
    eq.schedule(1000, []() {});
    eq.schedule(2000, []() {});
    EXPECT_EQ(eq.run(), 2u);
    EXPECT_EQ(eq.eventsExecuted(), 5u);
}

// Regression for the old const_cast-move-out-of-top() hack: the
// callback must be invoked exactly once, and its capture destroyed
// promptly after the invocation — not parked in the queue until
// destruction time.
TEST_P(EventQueueImplTest, CallbackInvokedOnceAndDestroyedPromptly)
{
    EventQueue eq(GetParam());
    auto token = std::make_shared<int>(0);
    eq.schedule(10, [token]() { ++*token; });
    eq.schedule(20, []() {});
    EXPECT_EQ(token.use_count(), 2);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(*token, 1);
    // The capture is gone even though the queue is still live.
    EXPECT_EQ(token.use_count(), 1);
    eq.run();
    EXPECT_EQ(*token, 1);
}

// Destroying the queue destroys pending captures without invoking
// them.
TEST_P(EventQueueImplTest, DestructorDestroysPendingCallbacks)
{
    auto token = std::make_shared<int>(0);
    {
        EventQueue eq(GetParam());
        eq.schedule(10, [token]() { ++*token; });
        eq.schedule(EventQueue::wheelSpan * 2, [token]() { ++*token; });
        EXPECT_EQ(token.use_count(), 3);
    }
    EXPECT_EQ(token.use_count(), 1);
    EXPECT_EQ(*token, 0);
}

// Events beyond the wheel horizon take the overflow heap and must
// still interleave correctly with near events — including FIFO
// ordering among same-tick events that entered through different
// tiers (a far-scheduled event must run before a later direct insert
// at the same tick).
TEST_P(EventQueueImplTest, FarEventsInterleaveAndStayFifo)
{
    EventQueue eq(GetParam());
    const Tick T = EventQueue::wheelSpan + 10;
    std::vector<int> order;
    eq.schedule(T, [&]() { order.push_back(1); }); // far at schedule time
    eq.schedule(T, [&]() { order.push_back(2); }); // far, same tick
    eq.schedule(20, [&]() {
        order.push_back(0);
        // Now T is inside the window: direct insert must land after
        // the two promoted events.
        eq.schedule(T, [&]() { order.push_back(3); });
    });
    eq.schedule(EventQueue::wheelSpan * 3, [&]() { order.push_back(4); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    if (GetParam() == EvqImpl::Wheel)
        EXPECT_GT(eq.overflowPromotions(), 0u);
    else
        EXPECT_EQ(eq.overflowPromotions(), 0u);
}

// One self-rescheduling event recycles a single pool node forever:
// the node is freed before the callback runs, so the rescheduled
// event reuses it and the high-water mark never grows.
TEST_P(EventQueueImplTest, PoolRecyclesNodes)
{
    EventQueue eq(GetParam());
    struct Chain
    {
        EventQueue *eq;
        int *count;
        void
        operator()()
        {
            if (++*count < 10000)
                eq->scheduleAfter(7, *this);
        }
    };
    int count = 0;
    eq.schedule(0, Chain{&eq, &count});
    eq.run();
    EXPECT_EQ(count, 10000);
    EXPECT_EQ(eq.poolHighWater(), 1u);
    EXPECT_EQ(eq.poolCapacity(), 1024u);
}

TEST_P(EventQueueImplDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq(GetParam());
    eq.schedule(100, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, []() {}), "in the past");
}

// The two backends must execute a randomized storm of events —
// same-tick bursts, far ticks, reschedules from inside callbacks —
// in the exact same order. This is what makes OBFUSMEM_EVQ_IMPL a
// bit-identical A/B knob at the full-system level.
TEST(EventQueue, WheelAndHeapExecuteIdentically)
{
    auto storm = [](EvqImpl impl) {
        EventQueue eq(impl);
        std::vector<std::pair<Tick, int>> trace;
        uint64_t rng = 12345;
        auto next = [&rng]() {
            rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
            return rng >> 33;
        };
        int serial = 0;
        std::function<void(int)> fire = [&](int id) {
            trace.emplace_back(eq.curTick(), id);
            // Each event spawns 0..2 children at near/far/same ticks.
            for (uint64_t k = next() % 3; k > 0; --k) {
                if (trace.size() + serial > 4000)
                    break;
                const uint64_t r = next();
                Tick delay = (r % 5 == 0)
                                 ? 0 // same tick
                                 : (r % 5 == 1)
                                       ? EventQueue::wheelSpan + r % 100000
                                       : r % 3000;
                int child = ++serial;
                eq.scheduleAfter(delay,
                                 [&fire, child]() { fire(child); });
            }
        };
        for (int i = 0; i < 50; ++i) {
            int id = ++serial;
            eq.schedule(next() % 2000, [&fire, id]() { fire(id); });
        }
        eq.run();
        return trace;
    };
    auto wheel = storm(EvqImpl::Wheel);
    auto heap = storm(EvqImpl::Heap);
    ASSERT_GT(wheel.size(), 50u);
    EXPECT_EQ(wheel, heap);
}

TEST(EventQueue, DefaultImplIsWheel)
{
    // The OBFUSMEM_EVQ_IMPL knob is latched on first use; in the test
    // environment it is unset, so the default must be the wheel.
    EventQueue eq;
    EXPECT_EQ(eq.impl(), EvqImpl::Wheel);
}

TEST(EventQueue, AttachStatsExposesKernelCounters)
{
    statistics::Group root("system", nullptr);
    EventQueue eq;
    eq.attachStats(root);
    for (Tick t : {10u, 20u, 30u})
        eq.schedule(t, []() {});
    eq.run();
    std::ostringstream os;
    root.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("eventq.eventsExecuted"), std::string::npos);
    EXPECT_NE(text.find("eventq.poolHighWater"), std::string::npos);
    EXPECT_NE(text.find("eventq.overflowPromotions"), std::string::npos);
}

TEST(InlineCallback, MoveTransfersAndDestroysPromptly)
{
    auto token = std::make_shared<int>(0);
    InlineCallback<64> a([token]() { ++*token; });
    EXPECT_EQ(token.use_count(), 2);
    InlineCallback<64> b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT: moved-from probe
    ASSERT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(token.use_count(), 2);
    b();
    EXPECT_EQ(*token, 1);
    b.reset();
    EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineCallback, AssignReplacesAndReleasesOldCapture)
{
    auto first = std::make_shared<int>(0);
    auto second = std::make_shared<int>(0);
    InlineCallback<64> cb([first]() { ++*first; });
    cb = InlineCallback<64>([second]() { ++*second; });
    EXPECT_EQ(first.use_count(), 1); // old capture destroyed
    cb();
    EXPECT_EQ(*first, 0);
    EXPECT_EQ(*second, 1);
}

TEST(ClockDomain, CoreClockIs2GHz)
{
    EXPECT_EQ(coreClock.period(), 500u);
    EXPECT_EQ(coreClock.cyclesToTicks(2), 1000u);
    EXPECT_EQ(coreClock.ticksToCycles(1499), 2u);
}

TEST(ClockDomain, BusClockIs800MHz)
{
    EXPECT_EQ(busClock.period(), 1250u);
}

TEST(ClockDomain, CryptoClockIs4ns)
{
    EXPECT_EQ(cryptoClock.period(), 4000u);
}

TEST(ClockDomain, FromMhz)
{
    EXPECT_EQ(ClockDomain::fromMhz(1000).period(), 1000u);
    EXPECT_EQ(ClockDomain::fromMhz(2000).period(), 500u);
}

TEST(ClockDomain, NextEdgeAligns)
{
    ClockDomain clk(100);
    EXPECT_EQ(clk.nextEdge(0), 0u);
    EXPECT_EQ(clk.nextEdge(1), 100u);
    EXPECT_EQ(clk.nextEdge(100), 100u);
    EXPECT_EQ(clk.nextEdge(101), 200u);
}

TEST(Types, TickConversions)
{
    EXPECT_EQ(tickPerNs, 1000u);
    EXPECT_EQ(tickPerUs, 1000000u);
    EXPECT_DOUBLE_EQ(ticksToNs(2500), 2.5);
}
