/**
 * @file
 * Memory substrate tests: address mapping, backing store, and the
 * channel bus.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/address_map.hh"
#include "mem/backing_store.hh"
#include "mem/channel_bus.hh"
#include "util/random.hh"

using namespace obfusmem;

namespace {

constexpr uint64_t GB = 1ull << 30;

} // namespace

class AddressMapChannels : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AddressMapChannels, DecodeEncodeRoundTrip)
{
    AddressMap map(8 * GB, GetParam());
    Random rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        uint64_t addr = blockAlign(rng.randUnder(8 * GB));
        DecodedAddr loc = map.decode(addr);
        EXPECT_EQ(map.encode(loc), addr);
        EXPECT_LT(loc.channel, GetParam());
        EXPECT_LT(loc.rank, map.ranksPerChannel());
        EXPECT_LT(loc.bank, map.banksPerRank());
        EXPECT_LT(loc.row, map.rowsPerBank());
        EXPECT_LT(loc.column, map.blocksPerRow());
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AddressMapChannels,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(AddressMap, ChannelInterleavesAtRowGranularity)
{
    // RoRaBaChCo: consecutive addresses stay in one channel for a
    // full row buffer (1 KB), then move to the next channel.
    AddressMap map(8 * GB, 4);
    for (uint64_t off = 0; off < 1024; off += blockBytes)
        EXPECT_EQ(map.decode(off).channel, 0u);
    EXPECT_EQ(map.decode(1024).channel, 1u);
    EXPECT_EQ(map.decode(2048).channel, 2u);
    EXPECT_EQ(map.decode(3072).channel, 3u);
    EXPECT_EQ(map.decode(4096).channel, 0u);
}

TEST(AddressMap, ColumnsWithinRow)
{
    AddressMap map(8 * GB, 1);
    EXPECT_EQ(map.blocksPerRow(), 16u); // 1 KB / 64 B
    EXPECT_EQ(map.decode(0).column, 0u);
    EXPECT_EQ(map.decode(64).column, 1u);
    EXPECT_EQ(map.decode(15 * 64).column, 15u);
    EXPECT_EQ(map.decode(16 * 64).column, 0u); // next bank/row unit
}

TEST(AddressMap, GeometryConsistent)
{
    AddressMap map(8 * GB, 2);
    uint64_t total = map.channels() * map.ranksPerChannel()
                     * map.banksPerRank() * map.rowsPerBank()
                     * map.rowBufferBytes();
    EXPECT_EQ(total, 8 * GB);
    EXPECT_FALSE(map.describe().empty());
}

TEST(AddressMapDeathTest, RejectsOutOfRange)
{
    AddressMap map(1 * GB, 1);
    EXPECT_EXIT(map.decode(1 * GB), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(BackingStore, ReadAfterWrite)
{
    BackingStore store(1 * GB);
    DataBlock data;
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i);
    store.write(0x1000, data);
    EXPECT_EQ(store.read(0x1000), data);
    EXPECT_TRUE(store.populated(0x1000));
    EXPECT_TRUE(store.populated(0x1001)); // same block
    EXPECT_FALSE(store.populated(0x2000));
    EXPECT_EQ(store.blocksAllocated(), 1u);
}

TEST(BackingStore, UnwrittenBlocksDeterministicJunk)
{
    BackingStore a(1 * GB), b(1 * GB);
    EXPECT_EQ(a.read(0x5000), b.read(0x5000));
    EXPECT_NE(a.read(0x5000), a.read(0x5040));
}

TEST(BackingStore, SubBlockAddressesAlias)
{
    BackingStore store(1 * GB);
    DataBlock data{};
    data[0] = 0xaa;
    store.write(0x1020, data); // mid-block address
    EXPECT_EQ(store.read(0x1000), data);
}

class BusFixture : public ::testing::Test
{
  protected:
    BusFixture()
        : stats("test", nullptr),
          bus("bus", eq, &stats, 0, ChannelBus::Params{})
    {}

    EventQueue eq;
    statistics::Group stats;
    ChannelBus bus;
};

TEST_F(BusFixture, SixtyFourBytesTakeFiveNs)
{
    Tick delivered = 0;
    bus.send(BusDir::ToMemory, 64, 0, false,
             [&](const BusFault &) { delivered = eq.curTick(); });
    eq.run();
    // 64 B at 12.8 GB/s = 5 ns burst + 1 ns propagation.
    EXPECT_EQ(delivered, 6 * tickPerNs);
}

TEST_F(BusFixture, MessagesSerializeFifo)
{
    std::vector<Tick> deliveries;
    for (int i = 0; i < 3; ++i) {
        bus.send(BusDir::ToMemory, 64, i, false,
                 [&](const BusFault &) { deliveries.push_back(eq.curTick()); });
    }
    eq.run();
    ASSERT_EQ(deliveries.size(), 3u);
    EXPECT_EQ(deliveries[0], 6000u);
    EXPECT_EQ(deliveries[1], 11000u);  // 5 ns later
    EXPECT_EQ(deliveries[2], 16000u);
}

TEST_F(BusFixture, CommandOnlyMessagesAreCheap)
{
    Tick delivered = 0;
    bus.send(BusDir::ToMemory, 0, 0, false,
             [&](const BusFault &) { delivered = eq.curTick(); });
    eq.run();
    EXPECT_EQ(delivered, 1250u + 1000u); // command slot + propagation
}

TEST_F(BusFixture, IdleTracksActivity)
{
    EXPECT_TRUE(bus.idle());
    bus.send(BusDir::ToMemory, 64, 0, false, [](const BusFault &) {});
    EXPECT_FALSE(bus.idle());
    eq.run();
    EXPECT_TRUE(bus.idle());
}

TEST_F(BusFixture, ProbeSeesWireFacts)
{
    struct Probe : BusProbe
    {
        std::vector<BusSnoop> seen;
        void observe(const BusSnoop &s) override { seen.push_back(s); }
    } probe;
    bus.attachProbe(&probe);

    bus.send(BusDir::ToMemory, 64, 0xdead, true, [](const BusFault &) {});
    bus.send(BusDir::ToProcessor, 32, 0xbeef, false, [](const BusFault &) {});
    eq.run();

    ASSERT_EQ(probe.seen.size(), 2u);
    EXPECT_EQ(probe.seen[0].wireAddr, 0xdeadu);
    EXPECT_TRUE(probe.seen[0].wireIsWrite);
    EXPECT_EQ(probe.seen[0].dir, BusDir::ToMemory);
    EXPECT_EQ(probe.seen[1].wireAddr, 0xbeefu);
    EXPECT_EQ(probe.seen[1].dir, BusDir::ToProcessor);
    EXPECT_EQ(probe.seen[1].bytes, 32u);
}

TEST_F(BusFixture, UtilizationAccounting)
{
    bus.send(BusDir::ToMemory, 128, 0, false, [](const BusFault &) {});
    eq.run();
    // 10 ns busy out of 10 ns elapsed transfer time (bus frees at
    // burst end; event at 11 ns for delivery).
    EXPECT_GT(bus.utilization(), 0.5);
}
