/**
 * @file
 * Trust architecture tests: identities, certification, write-once key
 * registers, the three boot approaches, MITM attacks, and component
 * upgrades (paper Sec. 3.1).
 */

#include <gtest/gtest.h>

#include "trust/boot.hh"
#include "trust/identity.hh"
#include "util/random.hh"

using namespace obfusmem;
using namespace obfusmem::trust;

namespace {

constexpr size_t keyBits = 128; // small keys keep tests fast

struct Parties
{
    Random rng{77};
    Manufacturer procMaker{"ProcCorp", keyBits, rng};
    Manufacturer memMaker{"MemCorp", keyBits, rng};
    Component proc{"cpu0", procMaker, keyBits, true, rng};
    Component mem{"hbm0", memMaker, keyBits, true, rng};

    void
    provision()
    {
        ASSERT_TRUE(proc.peerKeys().burn(mem.publicKey()));
        ASSERT_TRUE(mem.peerKeys().burn(proc.publicKey()));
    }
};

} // namespace

TEST(Identity, MeasurementDigestIsStable)
{
    Parties p;
    EXPECT_EQ(p.proc.measurement().digest(),
              p.proc.measurement().digest());
    EXPECT_NE(p.proc.measurement().digest(),
              p.mem.measurement().digest());
}

TEST(Identity, CertificateVerifiesAgainstIssuer)
{
    Parties p;
    EXPECT_TRUE(p.proc.certificate().verify(p.procMaker.caPublicKey()));
    EXPECT_TRUE(p.mem.certificate().verify(p.memMaker.caPublicKey()));
}

TEST(Identity, CertificateFailsAgainstWrongCa)
{
    Parties p;
    EXPECT_FALSE(p.proc.certificate().verify(p.memMaker.caPublicKey()));
}

TEST(Identity, KeyRegistersAreWriteOnceWithSpares)
{
    KeyRegisterFile regs(2); // 1 primary + 2 spares
    crypto::RsaPublicKey k1{crypto::BigUint(11), crypto::BigUint(3)};
    crypto::RsaPublicKey k2{crypto::BigUint(13), crypto::BigUint(3)};
    crypto::RsaPublicKey k3{crypto::BigUint(17), crypto::BigUint(3)};
    crypto::RsaPublicKey k4{crypto::BigUint(19), crypto::BigUint(3)};
    EXPECT_TRUE(regs.burn(k1));
    EXPECT_TRUE(regs.burn(k2));
    EXPECT_TRUE(regs.burn(k3));
    EXPECT_FALSE(regs.burn(k4)); // exhausted
    EXPECT_TRUE(regs.contains(k2));
    EXPECT_FALSE(regs.contains(k4));
    EXPECT_EQ(regs.slotsUsed(), 3u);
    EXPECT_EQ(regs.slotsFree(), 0u);
}

TEST(Boot, NaiveSucceedsWithoutAttacker)
{
    Parties p;
    BootResult r = BootProtocol::run(BootApproach::Naive, p.proc,
                                     p.mem, 2, p.rng);
    EXPECT_TRUE(r.success);
    EXPECT_FALSE(r.attackerHoldsKeys);
    ASSERT_EQ(r.channelKeys.size(), 2u);
    EXPECT_NE(r.channelKeys[0], r.channelKeys[1]);
}

TEST(Boot, NaiveIsSilentlyBrokenByMitm)
{
    // The paper rejects the naive approach: an active attacker on the
    // exposed bus completes the handshake undetected and holds keys.
    Parties p;
    MitmAttacker attacker(p.rng);
    BootResult r = BootProtocol::run(BootApproach::Naive, p.proc,
                                     p.mem, 1, p.rng, &attacker);
    EXPECT_TRUE(r.success); // nobody noticed...
    EXPECT_TRUE(r.attackerHoldsKeys); // ...but the attacker is in
}

TEST(Boot, TrustedIntegratorSucceedsWhenProvisioned)
{
    Parties p;
    p.provision();
    BootResult r = BootProtocol::run(BootApproach::TrustedIntegrator,
                                     p.proc, p.mem, 4, p.rng);
    EXPECT_TRUE(r.success) << r.failureReason;
    EXPECT_EQ(r.channelKeys.size(), 4u);
    EXPECT_FALSE(r.attackerHoldsKeys);
}

TEST(Boot, TrustedIntegratorFailsWithoutProvisioning)
{
    Parties p;
    BootResult r = BootProtocol::run(BootApproach::TrustedIntegrator,
                                     p.proc, p.mem, 1, p.rng);
    EXPECT_FALSE(r.success);
    EXPECT_NE(r.failureReason.find("not present"), std::string::npos);
}

TEST(Boot, TrustedIntegratorDetectsMitm)
{
    Parties p;
    p.provision();
    MitmAttacker attacker(p.rng);
    BootResult r = BootProtocol::run(BootApproach::TrustedIntegrator,
                                     p.proc, p.mem, 1, p.rng,
                                     &attacker);
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(r.attackerHoldsKeys);
    EXPECT_NE(r.failureReason.find("signature"), std::string::npos);
}

TEST(Boot, AttestationSucceedsWithHonestIntegrator)
{
    Parties p;
    p.provision();
    BootResult r = BootProtocol::run(BootApproach::UntrustedIntegrator,
                                     p.proc, p.mem, 2, p.rng);
    EXPECT_TRUE(r.success) << r.failureReason;
}

TEST(Boot, AttestationCatchesWrongBurnedKey)
{
    // A malicious integrator burns its own key instead of the real
    // memory's: attestation reveals the mismatch (paper's untrusted
    // integrator scenario).
    Parties p;
    Component impostor("evil-dimm", p.memMaker, keyBits, true, p.rng);
    ASSERT_TRUE(p.proc.peerKeys().burn(impostor.publicKey()));
    ASSERT_TRUE(p.mem.peerKeys().burn(p.proc.publicKey()));
    BootResult r = BootProtocol::run(BootApproach::UntrustedIntegrator,
                                     p.proc, p.mem, 1, p.rng);
    EXPECT_FALSE(r.success);
    EXPECT_NE(r.failureReason.find("burned key"), std::string::npos);
}

TEST(Boot, AttestationRejectsNonObfusMemParts)
{
    Parties p;
    Component legacy("plain-dimm", p.memMaker, keyBits, false, p.rng);
    ASSERT_TRUE(p.proc.peerKeys().burn(legacy.publicKey()));
    ASSERT_TRUE(legacy.peerKeys().burn(p.proc.publicKey()));
    BootResult r = BootProtocol::run(BootApproach::UntrustedIntegrator,
                                     p.proc, legacy, 1, p.rng);
    EXPECT_FALSE(r.success);
    EXPECT_NE(r.failureReason.find("capable"), std::string::npos);
}

TEST(Boot, RebootProducesFreshSessionKeys)
{
    Parties p;
    p.provision();
    BootResult first = BootProtocol::run(
        BootApproach::TrustedIntegrator, p.proc, p.mem, 1, p.rng);
    BootResult second = BootProtocol::run(
        BootApproach::TrustedIntegrator, p.proc, p.mem, 1, p.rng);
    ASSERT_TRUE(first.success);
    ASSERT_TRUE(second.success);
    EXPECT_NE(first.channelKeys[0], second.channelKeys[0]);
}

TEST(Boot, ComponentUpgradeUsesSpareRegisters)
{
    Parties p;
    p.provision();
    // Replace the memory module: burn the new module's key into the
    // processor's spare slot.
    Component new_mem("hbm1", p.memMaker, keyBits, true, p.rng);
    EXPECT_TRUE(BootProtocol::upgradeComponent(p.proc, new_mem));
    ASSERT_TRUE(new_mem.peerKeys().burn(p.proc.publicKey()));
    BootResult r = BootProtocol::run(BootApproach::TrustedIntegrator,
                                     p.proc, new_mem, 1, p.rng);
    EXPECT_TRUE(r.success) << r.failureReason;
}

TEST(Boot, UpgradesExhaustSpares)
{
    Parties p;
    p.provision(); // slot 1 of 3 used
    Component m2("hbm2", p.memMaker, keyBits, true, p.rng);
    Component m3("hbm3", p.memMaker, keyBits, true, p.rng);
    Component m4("hbm4", p.memMaker, keyBits, true, p.rng);
    EXPECT_TRUE(BootProtocol::upgradeComponent(p.proc, m2));
    EXPECT_TRUE(BootProtocol::upgradeComponent(p.proc, m3));
    // Default registers: 1 primary + 2 spares -> the fourth burn
    // fails, capturing "limited number of component upgrades".
    EXPECT_FALSE(BootProtocol::upgradeComponent(p.proc, m4));
}
